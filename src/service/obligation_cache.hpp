// Content-addressed obligation cache (service layer): memoizes the
// verdicts of component and composed obligations by a canonical
// fingerprint, so identical (module, spec, restriction, options)
// obligations are verified once and reused — within a batch, across jobs
// of a batch, and (with a disk directory) across runs.  This is the
// paper's §3.3 reuse story made operational: M ⊨_r f is established once
// per component and consulted by every containing system.
//
// Key
//   fingerprint = StableHash128 over
//     cache-format version salt
//   + canonical serialization of every module in the job
//     (smv::canonicalModule: vars, init formula, fairness, transition
//      conjuncts as labeled BDD DAGs)
//   + the obligation target (component index, or "composed")
//   + the spec formula text and the restriction index r = (I, F)
//   + the verdict-relevant JobOptions (engine, cluster threshold,
//     reorder flag)
//   The restriction r MUST be part of the key: ⊨_r verdicts are not
//   transferable across restrictions (docs/THEORY.md, "Obligation cache
//   soundness").
//
// Value
//   The decided verdict (Holds / Fails — never the budget verdicts or
//   Error; see cacheable()), plus the artifacts a report needs to be
//   complete without re-running the checker: the proof rule, deciding
//   engine, original check time, counterexample, and proof certificate.
//
// Tiers
//   - In-memory: a sharded LRU (kShards shards, each its own mutex + list
//     + index) shared by every worker of a VerificationService batch.
//   - On-disk (optional): a JSONL store at <dir>/obligations.jsonl.
//     Inserts append one line atomically (single buffered write under a
//     mutex, flushed); loading skips corrupted or truncated lines with a
//     counter, so a crash mid-append costs one entry, never the store.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "ctl/formula.hpp"
#include "service/job.hpp"

namespace cmc::service {

/// The memoized outcome of one decided obligation.
struct CachedVerdict {
  Verdict verdict = Verdict::Holds;  ///< Holds or Fails only
  std::string rule;                  ///< proof rule that decided it
  std::string engine;                ///< engine of the deciding attempt
  double seconds = 0.0;              ///< original check time
  std::string counterexample;
  std::string proofJson;
};

struct ObligationCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t inserts = 0;    ///< new entries (re-inserts not counted)
  std::uint64_t evictions = 0;  ///< LRU evictions across shards
  std::uint64_t loaded = 0;     ///< entries read from the disk store
  std::uint64_t corruptLines = 0;  ///< skipped disk lines (with a warning)
};

class ObligationCache {
 public:
  struct Options {
    /// Maximum in-memory entries across all shards (>= 1 enforced).
    std::size_t capacity = 1 << 16;
    /// Directory of the JSONL store; empty = in-memory only.  Created if
    /// missing; entries are loaded in the constructor.
    std::string dir;
  };

  ObligationCache();
  explicit ObligationCache(Options opts);

  /// Only decided verdicts are cacheable: Timeout/MemoryOut/Inconclusive
  /// say nothing about ⊨_r, and Error is not a verdict at all.
  static bool cacheable(Verdict v) noexcept {
    return v == Verdict::Holds || v == Verdict::Fails;
  }

  /// Thread-safe lookup; a hit refreshes LRU recency.
  std::optional<CachedVerdict> lookup(const std::string& fingerprint);

  /// Thread-safe insert; non-cacheable verdicts are rejected (returns
  /// false).  A new entry is appended to the disk store when configured;
  /// re-inserting an existing fingerprint only refreshes recency.
  bool insert(const std::string& fingerprint, const CachedVerdict& value);

  ObligationCacheStats stats() const;
  std::size_t size() const;
  const std::string& dir() const noexcept { return dir_; }

 private:
  struct Shard {
    mutable std::mutex mutex;
    /// Front = most recently used.
    std::list<std::pair<std::string, CachedVerdict>> order;
    std::unordered_map<std::string, decltype(order)::iterator> index;
  };

  static constexpr std::size_t kShards = 16;

  Shard& shardFor(const std::string& fingerprint);
  /// Insert into the in-memory tier only; returns true for a new entry.
  bool insertMemory(const std::string& fingerprint, const CachedVerdict& v);
  void loadDisk();
  void appendDisk(const std::string& fingerprint, const CachedVerdict& v);

  std::size_t perShardCapacity_ = 1;
  std::string dir_;
  std::string diskPath_;
  Shard shards_[kShards];

  mutable std::mutex statsMutex_;
  ObligationCacheStats stats_;

  std::mutex diskMutex_;
};

struct CompactionResult {
  std::uint64_t entriesBefore = 0;  ///< parsed entries, duplicates included
  std::uint64_t entriesAfter = 0;   ///< surviving unique fingerprints
  std::uint64_t duplicates = 0;     ///< dropped older writes (last wins)
  std::uint64_t corrupt = 0;        ///< dropped unparseable lines
  std::uint64_t bytesBefore = 0;
  std::uint64_t bytesAfter = 0;
};

/// Offline compaction of a disk store directory's obligations.jsonl:
/// last-write-wins dedup by fingerprint (first-occurrence order is
/// preserved), corrupt lines dropped, legacy bare lines re-framed, a
/// fresh header stamped, and the result atomically renamed over the store
/// while holding the store's flock.  "Offline" means no daemon should be
/// appending: a writer that opened the store before compaction keeps an
/// fd to the *replaced* inode and its appends would be lost.  False with
/// a message when the store cannot be opened, locked, or rewritten; a
/// missing store is an error (nothing to compact), not a no-op.
bool compactObligationStore(const std::string& dir, CompactionResult* result,
                            std::string* error);

/// The fingerprint of one obligation (see the key layout above).
/// `moduleCanon` holds smv::canonicalModule for every module of the job in
/// declaration order; a component obligation hashes only its own module, a
/// composed obligation hashes all of them.
std::string obligationFingerprint(const std::vector<std::string>& moduleCanon,
                                  std::size_t moduleIndex, bool composed,
                                  const ctl::Spec& spec,
                                  const JobOptions& options);

}  // namespace cmc::service
