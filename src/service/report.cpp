#include <sstream>

#include "service/job.hpp"
#include "service/trace_log.hpp"
#include "util/version.hpp"

namespace cmc::service {

const char* toString(Verdict v) noexcept {
  switch (v) {
    case Verdict::Holds: return "Holds";
    case Verdict::Fails: return "Fails";
    case Verdict::Timeout: return "Timeout";
    case Verdict::MemoryOut: return "MemoryOut";
    case Verdict::Inconclusive: return "Inconclusive";
    case Verdict::Cancelled: return "Cancelled";
    case Verdict::Error: return "Error";
  }
  return "Unknown";
}

Verdict worseVerdict(Verdict a, Verdict b) noexcept {
  // Severity for job aggregation: a definite refutation dominates (the job
  // answered "no"), then errors, then the not-an-answer verdicts.
  const auto rank = [](Verdict v) {
    switch (v) {
      case Verdict::Holds: return 0;
      case Verdict::Timeout: return 1;
      case Verdict::MemoryOut: return 2;
      case Verdict::Inconclusive: return 3;
      case Verdict::Cancelled: return 4;
      case Verdict::Error: return 5;
      case Verdict::Fails: return 6;
    }
    return 5;
  };
  return rank(a) >= rank(b) ? a : b;
}

namespace {

std::string attemptJson(const AttemptRecord& a) {
  return JsonObject()
      .put("engine", a.engine)
      .put("verdict", toString(a.verdict))
      .putDouble("seconds", a.seconds)
      .putUint("peak_live_nodes", a.peakLiveNodes)
      .putDouble("cache_hit_rate", a.cacheHitRate)
      .putDouble("elaborate_ms", a.elaborateMs)
      .putDouble("import_ms", a.importMs)
      .putDouble("fixpoint_ms", a.fixpointMs)
      .str();
}

std::string outcomeJson(const ObligationOutcome& o) {
  JsonObject obj;
  obj.put("id", o.id)
      .put("target", o.target)
      .put("spec", o.spec)
      .put("spec_text", o.specText)
      .put("verdict", toString(o.verdict))
      .put("verdict_source", o.verdictSource);
  if (!o.shard.empty()) obj.put("shard", o.shard);
  if (o.hedged) {
    obj.putBool("hedged", true);
    obj.put("hedge_winner", o.shard);
  }
  obj.put("rule", o.rule)
      .putBool("retried", o.retried)
      .putDouble("seconds", o.seconds);
  if (!o.fingerprint.empty()) obj.put("fingerprint", o.fingerprint);
  std::ostringstream attempts;
  attempts << '[';
  for (std::size_t i = 0; i < o.attempts.size(); ++i) {
    if (i > 0) attempts << ", ";
    attempts << attemptJson(o.attempts[i]);
  }
  attempts << ']';
  obj.putRaw("attempts", attempts.str());
  if (!o.engineChoiceJson.empty()) {
    obj.putRaw("engine_choice", o.engineChoiceJson);
  }
  if (!o.error.empty()) obj.put("error", o.error);
  if (!o.counterexample.empty()) obj.put("counterexample", o.counterexample);
  if (!o.proofJson.empty()) obj.putRaw("proof", o.proofJson);
  if (!o.learnedJson.empty()) obj.putRaw("learned", o.learnedJson);
  return obj.str();
}

}  // namespace

std::string JobReport::toJson() const {
  std::uint64_t holds = 0, fails = 0, undecided = 0;
  for (const ObligationOutcome& o : obligations) {
    if (o.verdict == Verdict::Holds) ++holds;
    else if (o.verdict == Verdict::Fails) ++fails;
    else ++undecided;
  }
  JsonObject opts;
  opts.putDouble("deadline_seconds", options.limits.deadlineSeconds)
      .putUint("node_budget", options.limits.nodeBudget)
      .put("engine", symbolic::toString(options.engine))
      .putBool("retry_other_engine", options.retryOtherEngine)
      .putBool("compose", options.compose)
      .putUint("cluster_threshold", options.clusterThreshold)
      .putBool("learn", options.learn);

  JsonObject root;
  root.put("job", job)
      .put("cmc_version", util::versionString())
      .put("source", source)
      .put("verdict", toString(verdict))
      .putDouble("wall_seconds", wallSeconds)
      .putRaw("options", opts.str())
      .putUint("obligation_count",
               static_cast<std::uint64_t>(obligations.size()))
      .putUint("holds", holds)
      .putUint("fails", fails)
      .putUint("undecided", undecided);
  JsonObject cache;
  cache.putUint("hits", cacheHits)
      .putUint("misses", cacheMisses)
      .putUint("inserts", cacheInserts);
  root.putRaw("cache", cache.str());
  root.putUint("journal_hits", journalHits);
  std::ostringstream arr;
  arr << '[';
  for (std::size_t i = 0; i < obligations.size(); ++i) {
    if (i > 0) arr << ",\n    ";
    arr << outcomeJson(obligations[i]);
  }
  arr << ']';
  root.putRaw("obligations", arr.str());
  return root.str();
}

}  // namespace cmc::service
