#include "service/obligation_cache.hpp"

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "service/journal.hpp"
#include "service/trace_log.hpp"
#include "util/failpoint.hpp"
#include "util/hash.hpp"
#include "util/version.hpp"

namespace cmc::service {

namespace {

/// Bumped whenever checker semantics or the canonical serialization
/// change, so a persisted store from an older build can never serve a
/// verdict computed under different semantics.
constexpr const char* kCacheVersion = "cmc-obligation-cache-v2";

constexpr const char* kStoreFile = "obligations.jsonl";

/// The store's header line (framed): "format" gates loading, "cmc_version"
/// stamps the build that created the store so a mixed-version --cache-dir
/// is diagnosable.  Written once, by whichever process first appends to an
/// empty store (under the same flock as the entry append).
std::string storeHeader() {
  return frameLine(JsonObject()
                       .put("format", kCacheVersion)
                       .put("cmc_version", util::versionString())
                       .str());
}

/// Write all of `data`, retrying on short writes and EINTR.
bool writeAll(int fd, const std::string& data) {
  std::size_t done = 0;
  while (done < data.size()) {
    const ssize_t n = ::write(fd, data.data() + done, data.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<std::size_t>(n);
  }
  return true;
}

/// One store line: the entry object wrapped in the journal's CRC framing
/// (frameLine), so a crash mid-append can never yield a silently
/// half-parsed entry.  The proof certificate is stored as a JSON *string*
/// (escaped), not a nested object, so the tolerant loader never needs to
/// balance braces.
std::string storeLine(const std::string& fingerprint, const CachedVerdict& v) {
  JsonObject obj;
  obj.put("fp", fingerprint)
      .put("verdict", toString(v.verdict))
      .put("rule", v.rule)
      .put("engine", v.engine)
      .putDouble("seconds", v.seconds);
  if (!v.counterexample.empty()) obj.put("counterexample", v.counterexample);
  if (!v.proofJson.empty()) obj.put("proof", v.proofJson);
  return frameLine(obj.str());
}

/// Strict inverse of a storeLine payload; any deviation marks the line
/// corrupt.
bool parseStorePayload(const std::string& line, std::string* fingerprint,
                       CachedVerdict* v) {
  if (line.empty() || line.front() != '{' || line.back() != '}') return false;
  std::string verdict;
  if (!jsonExtractString(line, "fp", fingerprint) ||
      !jsonExtractString(line, "verdict", &verdict)) {
    return false;
  }
  if (fingerprint->empty()) return false;
  if (verdict == "Holds") v->verdict = Verdict::Holds;
  else if (verdict == "Fails") v->verdict = Verdict::Fails;
  else return false;  // only decided verdicts belong in the store
  if (!jsonExtractString(line, "rule", &v->rule) ||
      !jsonExtractString(line, "engine", &v->engine) ||
      !jsonExtractDouble(line, "seconds", &v->seconds)) {
    return false;
  }
  jsonExtractString(line, "counterexample", &v->counterexample);
  jsonExtractString(line, "proof", &v->proofJson);
  return true;
}

/// Framed lines are checksummed; bare lines (stores written before the
/// framing existed) fall back to the strict parse alone.
bool parseStoreLine(const std::string& line, std::string* fingerprint,
                    CachedVerdict* v) {
  if (const std::optional<std::string> payload = unframeLine(line)) {
    return parseStorePayload(*payload, fingerprint, v);
  }
  if (line.find("\"crc\": ") != std::string::npos) return false;  // torn
  return parseStorePayload(line, fingerprint, v);
}

}  // namespace

ObligationCache::ObligationCache() : ObligationCache(Options{}) {}

ObligationCache::ObligationCache(Options opts) : dir_(std::move(opts.dir)) {
  const std::size_t capacity = opts.capacity < 1 ? 1 : opts.capacity;
  perShardCapacity_ = (capacity + kShards - 1) / kShards;
  if (!dir_.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    if (ec) {
      std::fprintf(stderr,
                   "obligation cache: cannot create %s (%s); "
                   "running in-memory only\n",
                   dir_.c_str(), ec.message().c_str());
      dir_.clear();
    } else {
      diskPath_ = (std::filesystem::path(dir_) / kStoreFile).string();
      loadDisk();
    }
  }
}

ObligationCache::Shard& ObligationCache::shardFor(
    const std::string& fingerprint) {
  std::size_t seed = 0;
  for (char c : fingerprint) {
    hashCombine(seed, static_cast<unsigned char>(c));
  }
  return shards_[mix64(seed) % kShards];
}

std::optional<CachedVerdict> ObligationCache::lookup(
    const std::string& fingerprint) {
  Shard& shard = shardFor(fingerprint);
  std::optional<CachedVerdict> result;
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.index.find(fingerprint);
    if (it != shard.index.end()) {
      shard.order.splice(shard.order.begin(), shard.order, it->second);
      result = it->second->second;
    }
  }
  std::lock_guard<std::mutex> lock(statsMutex_);
  if (result.has_value()) ++stats_.hits;
  else ++stats_.misses;
  return result;
}

bool ObligationCache::insertMemory(const std::string& fingerprint,
                                   const CachedVerdict& v) {
  Shard& shard = shardFor(fingerprint);
  bool isNew = false;
  std::uint64_t evicted = 0;
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.index.find(fingerprint);
    if (it != shard.index.end()) {
      shard.order.splice(shard.order.begin(), shard.order, it->second);
      it->second->second = v;
    } else {
      shard.order.emplace_front(fingerprint, v);
      shard.index.emplace(fingerprint, shard.order.begin());
      isNew = true;
      while (shard.order.size() > perShardCapacity_) {
        shard.index.erase(shard.order.back().first);
        shard.order.pop_back();
        ++evicted;
      }
    }
  }
  if (isNew || evicted > 0) {
    std::lock_guard<std::mutex> lock(statsMutex_);
    if (isNew) ++stats_.inserts;
    stats_.evictions += evicted;
  }
  return isNew;
}

bool ObligationCache::insert(const std::string& fingerprint,
                             const CachedVerdict& v) {
  if (fingerprint.empty() || !cacheable(v.verdict)) return false;
  const bool isNew = insertMemory(fingerprint, v);
  if (isNew && !diskPath_.empty()) appendDisk(fingerprint, v);
  return isNew;
}

void ObligationCache::loadDisk() {
  std::ifstream in(diskPath_);
  if (!in) return;  // no store yet — first run in this directory
  std::string line;
  std::uint64_t loaded = 0, corrupt = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::string fingerprint;
    CachedVerdict v;
    try {
      CMC_FAILPOINT("cache.disk_load");
      if (const std::optional<std::string> payload = unframeLine(line)) {
        std::string format;
        if (jsonExtractString(*payload, "format", &format)) {
          // Header line.  A future-format store must not serve verdicts
          // computed under different semantics: stop loading entirely.
          if (format != kCacheVersion) {
            std::fprintf(stderr,
                         "obligation cache: %s has format '%s' (this build "
                         "writes '%s'); ignoring the store\n",
                         diskPath_.c_str(), format.c_str(), kCacheVersion);
            return;
          }
          continue;
        }
      }
      if (parseStoreLine(line, &fingerprint, &v)) {
        insertMemory(fingerprint, v);
        ++loaded;
      } else {
        ++corrupt;
      }
    } catch (const std::exception&) {
      // An I/O or injected failure costs this line, never the store.
      ++corrupt;
    }
  }
  if (corrupt > 0) {
    std::fprintf(stderr,
                 "obligation cache: skipped %llu corrupt line(s) in %s\n",
                 static_cast<unsigned long long>(corrupt), diskPath_.c_str());
  }
  std::lock_guard<std::mutex> lock(statsMutex_);
  stats_.loaded += loaded;
  stats_.corruptLines += corrupt;
  // Loading is not inserting: report only what the run itself adds.
  stats_.inserts = 0;
  stats_.evictions = 0;
}

void ObligationCache::appendDisk(const std::string& fingerprint,
                                 const CachedVerdict& v) {
  // Disk-tier failures degrade to in-memory caching; they never propagate
  // into the obligation that produced the verdict.
  try {
    std::string data = storeLine(fingerprint, v) + "\n";
    std::lock_guard<std::mutex> lock(diskMutex_);
    CMC_FAILPOINT("cache.disk_append");
    // The diskMutex_ serializes this process's appenders; the flock below
    // serializes *processes* sharing one --cache-dir, so two cmc instances
    // can never interleave bytes mid-line.  Each append is a single
    // write(2) to an O_APPEND descriptor while holding the lock; a reader
    // — or a crash — sees whole lines plus at most one truncated tail,
    // which the checksum rejects on load.
    const int fd = ::open(diskPath_.c_str(), O_CREAT | O_WRONLY | O_APPEND,
                          0644);
    if (fd < 0) throw Error("cannot open " + diskPath_);
    bool ok = false;
    std::string failure;
    if (::flock(fd, LOCK_EX) == 0) {
      // Whichever locked an empty store first prepends the header.
      const off_t size = ::lseek(fd, 0, SEEK_END);
      if (size == 0) data.insert(0, storeHeader() + "\n");
      ok = writeAll(fd, data);
      if (!ok) failure = "write to " + diskPath_ + " failed";
      ::flock(fd, LOCK_UN);
    } else {
      failure = "flock on " + diskPath_ + " failed";
    }
    ::close(fd);
    if (!ok) throw Error(failure);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "obligation cache: append failed: %s\n", e.what());
  }
}

ObligationCacheStats ObligationCache::stats() const {
  std::lock_guard<std::mutex> lock(statsMutex_);
  return stats_;
}

std::size_t ObligationCache::size() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    total += shard.order.size();
  }
  return total;
}

bool compactObligationStore(const std::string& dir, CompactionResult* result,
                            std::string* error) {
  *result = CompactionResult{};
  const std::string path =
      (std::filesystem::path(dir) / kStoreFile).string();
  // O_RDWR (not O_RDONLY): the flock must be the same exclusive lock
  // appenders take, so a concurrent `cmc serve` append waits out the
  // whole rewrite instead of racing the rename.
  const int fd = ::open(path.c_str(), O_RDWR);
  if (fd < 0) {
    *error = "cannot open " + path + ": " + std::strerror(errno);
    return false;
  }
  // LOCK_NB: appenders hold the store flock only for the duration of one
  // append, so a lock we cannot take immediately means a live writer is
  // mid-append — refuse rather than silently rewriting a store another
  // process is actively growing.  (A writer that appends *between* our
  // lock and the rename still loses nothing: it waits on the same flock.)
  if (::flock(fd, LOCK_EX | LOCK_NB) != 0) {
    if (errno == EWOULDBLOCK) {
      *error = path +
               " is locked by a live writer (a running cmc serve or check "
               "is appending); compact when the store is quiescent";
    } else {
      *error = "flock on " + path + " failed: " + std::strerror(errno);
    }
    ::close(fd);
    return false;
  }
  const auto unlockAndClose = [&] {
    ::flock(fd, LOCK_UN);
    ::close(fd);
  };

  std::string contents;
  {
    char buf[1 << 16];
    ssize_t n;
    while ((n = ::read(fd, buf, sizeof buf)) != 0) {
      if (n < 0) {
        if (errno == EINTR) continue;
        *error = "read " + path + " failed: " + std::strerror(errno);
        unlockAndClose();
        return false;
      }
      contents.append(buf, static_cast<std::size_t>(n));
    }
  }
  result->bytesBefore = contents.size();

  // Last write wins: later occurrences of a fingerprint replace earlier
  // ones in place, keeping first-occurrence order (so a compacted store
  // loads in the same LRU-seeding order as the original).
  std::unordered_map<std::string, std::size_t> slotByFp;
  std::vector<std::string> lines;
  std::size_t at = 0;
  while (at < contents.size()) {
    std::size_t end = contents.find('\n', at);
    if (end == std::string::npos) end = contents.size();
    std::string line = contents.substr(at, end - at);
    at = end + 1;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.find_first_not_of(" \t") == std::string::npos) continue;
    if (const std::optional<std::string> payload = unframeLine(line)) {
      std::string format;
      if (jsonExtractString(*payload, "format", &format)) {
        if (format != kCacheVersion) {
          *error = path + " has format '" + format + "' (this build writes '" +
                   kCacheVersion + "'); refusing to compact";
          unlockAndClose();
          return false;
        }
        continue;  // a fresh header is stamped below
      }
    }
    std::string fingerprint;
    CachedVerdict v;
    if (!parseStoreLine(line, &fingerprint, &v)) {
      ++result->corrupt;
      continue;
    }
    ++result->entriesBefore;
    // Keep the surviving line byte-identical when it was already framed;
    // legacy bare lines gain framing here.
    const std::string framed =
        unframeLine(line).has_value() ? line : frameLine(line);
    const auto it = slotByFp.find(fingerprint);
    if (it != slotByFp.end()) {
      ++result->duplicates;
      lines[it->second] = framed;
    } else {
      slotByFp.emplace(fingerprint, lines.size());
      lines.push_back(framed);
    }
  }
  result->entriesAfter = lines.size();

  std::string data = storeHeader() + "\n";
  for (const std::string& line : lines) {
    data += line;
    data += '\n';
  }
  result->bytesAfter = data.size();

  const std::string tmpPath = path + ".compact.tmp";
  const int tmpFd =
      ::open(tmpPath.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  if (tmpFd < 0) {
    *error = "cannot create " + tmpPath + ": " + std::strerror(errno);
    unlockAndClose();
    return false;
  }
  const bool wrote = writeAll(tmpFd, data) && ::fsync(tmpFd) == 0;
  ::close(tmpFd);
  // Crash window under test: the temp file exists but the rename has not
  // happened.  The original store must survive untouched and the flock
  // must be released (the error path below does both).
  try {
    CMC_FAILPOINT("cache.compact");
  } catch (const std::exception& e) {
    *error = std::string("compaction aborted: ") + e.what();
    ::unlink(tmpPath.c_str());
    unlockAndClose();
    return false;
  }
  if (!wrote || ::rename(tmpPath.c_str(), path.c_str()) != 0) {
    *error = "rewrite of " + path + " failed: " + std::strerror(errno);
    ::unlink(tmpPath.c_str());
    unlockAndClose();
    return false;
  }
  unlockAndClose();
  return true;
}

std::string obligationFingerprint(const std::vector<std::string>& moduleCanon,
                                  std::size_t moduleIndex, bool composed,
                                  const ctl::Spec& spec,
                                  const JobOptions& options) {
  StableHash128 h;
  h.update(kCacheVersion).sep();
  if (composed) {
    // The composed verdict depends on every component (and on their
    // interleaving order, which fixes the composition's variable set).
    h.update("composed").sep();
    for (const std::string& canon : moduleCanon) {
      h.update(canon).sep();
    }
  } else {
    h.update("component").sep();
    h.update(moduleCanon.at(moduleIndex)).sep();
  }
  // The restriction index r = (I, F): ⊨_r verdicts are not transferable
  // across restrictions, so r must be part of the address (THEORY.md).
  h.update(spec.r.toString()).sep();
  h.update(ctl::toString(spec.f)).sep();
  // Verdict-relevant options.  Engine and clustering do not change Holds /
  // Fails (results are BDD-identical), but keeping them in the key makes
  // every cached verdict attributable to one exact configuration — and a
  // future engine whose semantics drift cannot alias an old entry.
  // EngineMode::Partitioned hashes to "partitioned", so entries written by
  // older builds (which hashed the boolean engine flag) stay addressable.
  h.update(symbolic::toString(options.engine)).sep();
  h.update(std::to_string(options.clusterThreshold)).sep();
  h.update(options.reorderBeforeCheck ? "reorder" : "noreorder").sep();
  // Assumption provenance: a learned-assumption premise query composes a
  // synthetic environment module into the model.  The module content is
  // already in the canon, but folding the digest keeps two different
  // assumptions apart even if canonicalization ever coarsens (v2 bump).
  h.update("assume:").update(options.assumptionDigest).sep();
  return h.hex();
}

}  // namespace cmc::service
