#include "service/obligation_cache.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "service/trace_log.hpp"
#include "util/hash.hpp"

namespace cmc::service {

namespace {

/// Bumped whenever checker semantics or the canonical serialization
/// change, so a persisted store from an older build can never serve a
/// verdict computed under different semantics.
constexpr const char* kCacheVersion = "cmc-obligation-cache-v1";

constexpr const char* kStoreFile = "obligations.jsonl";

/// Parse the JSON string literal starting at s[i] (which must be '"').
/// Returns false on malformed or truncated input (the corruption-tolerant
/// loader's failure path).
bool parseJsonString(const std::string& s, std::size_t* i, std::string* out) {
  if (*i >= s.size() || s[*i] != '"') return false;
  ++*i;
  out->clear();
  while (*i < s.size()) {
    const char c = s[*i];
    if (c == '"') {
      ++*i;
      return true;
    }
    if (c == '\\') {
      if (*i + 1 >= s.size()) return false;
      const char esc = s[*i + 1];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'n': out->push_back('\n'); break;
        case 't': out->push_back('\t'); break;
        case 'r': out->push_back('\r'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'u': {
          // jsonEscape only emits \u00XX for control characters.
          if (*i + 5 >= s.size()) return false;
          unsigned code = 0;
          for (int k = 2; k <= 5; ++k) {
            const char h = s[*i + k];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return false;
          }
          out->push_back(static_cast<char>(code & 0xff));
          *i += 4;
          break;
        }
        default: return false;
      }
      *i += 2;
      continue;
    }
    out->push_back(c);
    ++*i;
  }
  return false;  // unterminated literal (truncated line)
}

/// Find `"key": ` in the flat object and return the start index of its
/// value, or npos.  Keys are matched as whole quoted tokens, so a key name
/// occurring inside a string value cannot confuse the scan — all our keys
/// are written by JsonObject in a fixed order before any free-text value.
std::size_t findValue(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\": ";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return std::string::npos;
  return at + needle.size();
}

bool extractString(const std::string& line, const std::string& key,
                   std::string* out) {
  std::size_t i = findValue(line, key);
  if (i == std::string::npos) return false;
  return parseJsonString(line, &i, out);
}

bool extractDouble(const std::string& line, const std::string& key,
                   double* out) {
  const std::size_t i = findValue(line, key);
  if (i == std::string::npos) return false;
  try {
    *out = std::stod(line.substr(i));
  } catch (...) {
    return false;
  }
  return true;
}

/// One store line.  The proof certificate is stored as a JSON *string*
/// (escaped), not a nested object, so the tolerant loader never needs to
/// balance braces.
std::string storeLine(const std::string& fingerprint, const CachedVerdict& v) {
  JsonObject obj;
  obj.put("fp", fingerprint)
      .put("verdict", toString(v.verdict))
      .put("rule", v.rule)
      .put("engine", v.engine)
      .putDouble("seconds", v.seconds);
  if (!v.counterexample.empty()) obj.put("counterexample", v.counterexample);
  if (!v.proofJson.empty()) obj.put("proof", v.proofJson);
  return obj.str();
}

/// Strict inverse of storeLine; any deviation marks the line corrupt.
bool parseStoreLine(const std::string& line, std::string* fingerprint,
                    CachedVerdict* v) {
  if (line.empty() || line.front() != '{' || line.back() != '}') return false;
  std::string verdict;
  if (!extractString(line, "fp", fingerprint) ||
      !extractString(line, "verdict", &verdict)) {
    return false;
  }
  if (fingerprint->empty()) return false;
  if (verdict == "Holds") v->verdict = Verdict::Holds;
  else if (verdict == "Fails") v->verdict = Verdict::Fails;
  else return false;  // only decided verdicts belong in the store
  if (!extractString(line, "rule", &v->rule) ||
      !extractString(line, "engine", &v->engine) ||
      !extractDouble(line, "seconds", &v->seconds)) {
    return false;
  }
  extractString(line, "counterexample", &v->counterexample);
  extractString(line, "proof", &v->proofJson);
  return true;
}

}  // namespace

ObligationCache::ObligationCache() : ObligationCache(Options{}) {}

ObligationCache::ObligationCache(Options opts) : dir_(std::move(opts.dir)) {
  const std::size_t capacity = opts.capacity < 1 ? 1 : opts.capacity;
  perShardCapacity_ = (capacity + kShards - 1) / kShards;
  if (!dir_.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    if (ec) {
      std::fprintf(stderr,
                   "obligation cache: cannot create %s (%s); "
                   "running in-memory only\n",
                   dir_.c_str(), ec.message().c_str());
      dir_.clear();
    } else {
      diskPath_ = (std::filesystem::path(dir_) / kStoreFile).string();
      loadDisk();
    }
  }
}

ObligationCache::Shard& ObligationCache::shardFor(
    const std::string& fingerprint) {
  std::size_t seed = 0;
  for (char c : fingerprint) {
    hashCombine(seed, static_cast<unsigned char>(c));
  }
  return shards_[mix64(seed) % kShards];
}

std::optional<CachedVerdict> ObligationCache::lookup(
    const std::string& fingerprint) {
  Shard& shard = shardFor(fingerprint);
  std::optional<CachedVerdict> result;
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.index.find(fingerprint);
    if (it != shard.index.end()) {
      shard.order.splice(shard.order.begin(), shard.order, it->second);
      result = it->second->second;
    }
  }
  std::lock_guard<std::mutex> lock(statsMutex_);
  if (result.has_value()) ++stats_.hits;
  else ++stats_.misses;
  return result;
}

bool ObligationCache::insertMemory(const std::string& fingerprint,
                                   const CachedVerdict& v) {
  Shard& shard = shardFor(fingerprint);
  bool isNew = false;
  std::uint64_t evicted = 0;
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.index.find(fingerprint);
    if (it != shard.index.end()) {
      shard.order.splice(shard.order.begin(), shard.order, it->second);
      it->second->second = v;
    } else {
      shard.order.emplace_front(fingerprint, v);
      shard.index.emplace(fingerprint, shard.order.begin());
      isNew = true;
      while (shard.order.size() > perShardCapacity_) {
        shard.index.erase(shard.order.back().first);
        shard.order.pop_back();
        ++evicted;
      }
    }
  }
  if (isNew || evicted > 0) {
    std::lock_guard<std::mutex> lock(statsMutex_);
    if (isNew) ++stats_.inserts;
    stats_.evictions += evicted;
  }
  return isNew;
}

bool ObligationCache::insert(const std::string& fingerprint,
                             const CachedVerdict& v) {
  if (fingerprint.empty() || !cacheable(v.verdict)) return false;
  const bool isNew = insertMemory(fingerprint, v);
  if (isNew && !diskPath_.empty()) appendDisk(fingerprint, v);
  return isNew;
}

void ObligationCache::loadDisk() {
  std::ifstream in(diskPath_);
  if (!in) return;  // no store yet — first run in this directory
  std::string line;
  std::uint64_t loaded = 0, corrupt = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::string fingerprint;
    CachedVerdict v;
    if (parseStoreLine(line, &fingerprint, &v)) {
      insertMemory(fingerprint, v);
      ++loaded;
    } else {
      ++corrupt;
    }
  }
  if (corrupt > 0) {
    std::fprintf(stderr,
                 "obligation cache: skipped %llu corrupt line(s) in %s\n",
                 static_cast<unsigned long long>(corrupt), diskPath_.c_str());
  }
  std::lock_guard<std::mutex> lock(statsMutex_);
  stats_.loaded += loaded;
  stats_.corruptLines += corrupt;
  // Loading is not inserting: report only what the run itself adds.
  stats_.inserts = 0;
  stats_.evictions = 0;
}

void ObligationCache::appendDisk(const std::string& fingerprint,
                                 const CachedVerdict& v) {
  const std::string line = storeLine(fingerprint, v) + "\n";
  std::lock_guard<std::mutex> lock(diskMutex_);
  // One buffered append + flush per entry: the line lands in the file with
  // a single write, so a reader (or a crash) sees whole lines plus at most
  // one truncated tail, which the loader skips.
  std::ofstream out(diskPath_, std::ios::app);
  if (!out) {
    std::fprintf(stderr, "obligation cache: cannot append to %s\n",
                 diskPath_.c_str());
    return;
  }
  out << line;
  out.flush();
}

ObligationCacheStats ObligationCache::stats() const {
  std::lock_guard<std::mutex> lock(statsMutex_);
  return stats_;
}

std::size_t ObligationCache::size() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    total += shard.order.size();
  }
  return total;
}

std::string obligationFingerprint(const std::vector<std::string>& moduleCanon,
                                  std::size_t moduleIndex, bool composed,
                                  const ctl::Spec& spec,
                                  const JobOptions& options) {
  StableHash128 h;
  h.update(kCacheVersion).sep();
  if (composed) {
    // The composed verdict depends on every component (and on their
    // interleaving order, which fixes the composition's variable set).
    h.update("composed").sep();
    for (const std::string& canon : moduleCanon) {
      h.update(canon).sep();
    }
  } else {
    h.update("component").sep();
    h.update(moduleCanon.at(moduleIndex)).sep();
  }
  // The restriction index r = (I, F): ⊨_r verdicts are not transferable
  // across restrictions, so r must be part of the address (THEORY.md).
  h.update(spec.r.toString()).sep();
  h.update(ctl::toString(spec.f)).sep();
  // Verdict-relevant options.  Engine and clustering do not change Holds /
  // Fails (results are BDD-identical), but keeping them in the key makes
  // every cached verdict attributable to one exact configuration — and a
  // future engine whose semantics drift cannot alias an old entry.
  h.update(options.usePartitionedTrans ? "partitioned" : "monolithic").sep();
  h.update(std::to_string(options.clusterThreshold)).sep();
  h.update(options.reorderBeforeCheck ? "reorder" : "noreorder").sep();
  return h.hex();
}

}  // namespace cmc::service
