// Live server metrics (service layer): a thread-safe registry of named
// counters, gauges, and fixed-bucket latency histograms, instrumented at
// the server's accept/admit paths and the scheduler's dispatch/verdict
// paths.  The registry is the source of truth behind the wire protocol's
// STATS command and the periodic "metrics" JSONL line `cmc serve` emits
// into its trace stream.
//
// Design
//  - Instruments are created on first use (counter("requests_admitted"))
//    and live for the registry's lifetime; call sites hold plain
//    references, so the hot path is one relaxed atomic op — no lock, no
//    lookup.  The registry mutex guards creation and snapshotting only.
//  - Histograms use a fixed bucket ladder (1 ms .. 60 s, then +Inf),
//    shared by every histogram so snapshots are comparable.  observe()
//    is two relaxed atomic adds plus a branch-free-ish bucket scan over
//    16 doubles — cheap enough for per-request and per-obligation use.
//  - Rendering: toJson() (nested, for the STATS response and the metrics
//    trace event) and toText() (Prometheus-style lines, what `cmc submit
//    --stats` prints, one metric per line so shell smoke tests can grep).
//    Both render from one consistent pass over sorted names.
//
// Consistency invariants the renderings expose (asserted by the CI smoke):
//    <h>_count == sum of <h>'s per-bucket counts (JSON)
//    <h>_bucket{le="+Inf"} == <h>_count               (text, cumulative)
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace cmc::service {

/// Monotonically increasing event count.
class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Instantaneous level (queue depth, open connections); may go down.
class Gauge {
 public:
  void inc(std::int64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  void dec(std::int64_t n = 1) noexcept {
    value_.fetch_sub(n, std::memory_order_relaxed);
  }
  void set(std::int64_t v) noexcept {
    value_.store(v, std::memory_order_relaxed);
  }
  std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Fixed-bucket latency histogram (seconds).  Lock-free observe; the
/// per-bucket counts, total count, and sum are each exact, and a snapshot
/// taken while observers run is at worst one observation skewed.
class LatencyHistogram {
 public:
  /// Upper bounds of the finite buckets, in seconds; an implicit +Inf
  /// bucket follows.  Shared by every histogram in the process.
  static const std::vector<double>& bucketBounds();

  void observe(double seconds) noexcept;

  struct Snapshot {
    std::vector<std::uint64_t> counts;  ///< per-bucket (finite + overflow)
    std::uint64_t count = 0;
    double sumSeconds = 0.0;

    /// Estimated q-quantile (q in [0, 1]) by linear interpolation inside
    /// the covering bucket — the usual fixed-bucket estimator, so p99 is
    /// only as sharp as the ladder.  Observations in the +Inf bucket clamp
    /// to the last finite bound.  0 when the histogram is empty.
    double quantile(double q) const;
  };
  Snapshot snapshot() const;

 private:
  static constexpr std::size_t kFiniteBuckets = 15;
  std::atomic<std::uint64_t> counts_[kFiniteBuckets + 1]{};
  std::atomic<std::uint64_t> count_{0};
  /// Sum in microseconds so it fits an atomic integer exactly.
  std::atomic<std::uint64_t> sumMicros_{0};
};

class MetricsRegistry {
 public:
  /// Get-or-create.  The returned reference is stable for the registry's
  /// lifetime; resolve once, then update lock-free.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  LatencyHistogram& histogram(const std::string& name);

  /// Point-in-time value readers (0 when the instrument does not exist
  /// yet); for assertions and the STATUS command.
  std::uint64_t counterValue(const std::string& name) const;
  std::int64_t gaugeValue(const std::string& name) const;
  /// Estimated quantile of a histogram (0 when it does not exist yet);
  /// what STATS stamps as request_p50_seconds / request_p99_seconds for
  /// the cluster coordinator to aggregate.
  double histogramQuantile(const std::string& name, double q) const;

  /// {"counters": {...}, "gauges": {...}, "histograms": {"name":
  ///   {"count": n, "sum_seconds": s, "bounds": [...], "counts": [...]}}}
  std::string toJson() const;

  /// Prometheus-style text: `name value` per counter/gauge, and
  /// `name_count` / `name_sum` / cumulative `name_bucket{le="..."}` lines
  /// per histogram.  Names are rendered in sorted order.
  std::string toText() const;

 private:
  mutable std::mutex mutex_;
  // std::map: node-stable references, deterministic (sorted) rendering.
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, LatencyHistogram> histograms_;
};

}  // namespace cmc::service
