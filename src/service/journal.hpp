// Crash-safe run journal (service layer): per-obligation durability for
// batch runs.  Every obligation's final outcome is appended to a JSONL
// journal the moment it is decided — append + flush, one line per
// obligation, each line carrying a CRC-32 framing checksum — so a crashed
// or SIGKILLed run loses at most the line being written, never a decided
// verdict.  `cmc --resume` loads the journal, serves the already-decided
// obligations (verdict_source "journal" in trace and report), and re-runs
// only the remainder.
//
// Framing
//   A journal line is a flat JSON object whose LAST key is "crc":
//     {"fp": "...", ..., "crc": "9a3f12cd"}
//   The checksum covers the payload exactly as serialized (the object with
//   the ", \"crc\": ...\"" suffix removed and the brace restored), so a
//   torn tail, a flipped byte, or an interleaved partial write is detected
//   and the line dropped on load — corruption is counted, never parsed.
//   The obligation cache's disk store reuses this framing (frameLine /
//   unframeLine), giving both durability files one inspection story.
//
// Replay semantics
//   Only decided verdicts (Holds / Fails) are served on resume; budget
//   verdicts, Cancelled, and Error say nothing about ⊨_r and are re-run.
//   Entries are matched by content fingerprint when one was computed (the
//   obligation cache's address, so an edited model re-verifies), with a
//   (job, obligation id, spec text) identity fallback otherwise.  A resumed
//   run is expected to use the same command line as the original; the
//   fingerprint embeds the verdict-relevant options, so an engine-option
//   change re-verifies fingerprinted obligations automatically.
#pragma once

#include <cstdint>
#include <fstream>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "service/job.hpp"

namespace cmc::service {

/// CRC-32 (IEEE 802.3, reflected) — the journal's per-line checksum.
std::uint32_t crc32(std::string_view bytes) noexcept;

/// Frame a serialized flat JSON object with a trailing checksum field:
/// {"k": v} -> {"k": v, "crc": "xxxxxxxx"}.  The input must be a
/// non-empty object serialization ({...}).
std::string frameLine(const std::string& payloadJson);

/// Verify and strip the framing checksum.  Returns the payload object, or
/// nullopt for torn, truncated, or corrupted lines.
std::optional<std::string> unframeLine(std::string_view line);

/// Field extraction from the flat single-line JSON formats written by
/// JsonObject (journal entries, cache store lines).  Returns false when
/// the key is missing or its value is malformed/truncated.
bool jsonExtractString(const std::string& line, const std::string& key,
                       std::string* out);
bool jsonExtractDouble(const std::string& line, const std::string& key,
                       double* out);
bool jsonExtractUint(const std::string& line, const std::string& key,
                     std::uint64_t* out);
bool jsonExtractBool(const std::string& line, const std::string& key,
                     bool* out);

/// Parse a verdict name as written by toString(Verdict).
bool verdictFromString(std::string_view text, Verdict* out) noexcept;

/// One journaled obligation outcome.
struct JournalEntry {
  /// Content fingerprint (obligation-cache address); may be empty when
  /// fingerprinting failed or the cache key was unavailable.
  std::string fingerprint;
  std::string job;
  std::string id;        ///< "<target>/<spec name>"
  std::string target;
  std::string spec;
  std::string specText;
  Verdict verdict = Verdict::Error;
  std::string rule;
  std::string engine;
  double seconds = 0.0;
  std::string error;
  std::string counterexample;
  std::string proofJson;
};

/// The identity under which an entry is replayed: the content fingerprint
/// when present, else a (job, id, spec text) fallback.
std::string journalKey(const JournalEntry& e);

/// A loaded journal: the decided entries by replay key (last write wins),
/// plus load diagnostics.
struct JournalReplay {
  std::unordered_map<std::string, JournalEntry> decided;
  std::uint64_t lines = 0;      ///< well-formed entry lines
  std::uint64_t undecided = 0;  ///< entries with non-replayable verdicts
  std::uint64_t corrupt = 0;    ///< torn/checksum-failed/unparseable lines
  bool found = false;           ///< the journal file existed

  const JournalEntry* find(const std::string& key) const {
    const auto it = decided.find(key);
    return it == decided.end() ? nullptr : &it->second;
  }
};

/// Load a journal for --resume.  A missing file yields found == false (a
/// fresh run, not an error); corrupt lines are skipped and counted.
JournalReplay loadJournal(const std::string& path);

/// The append-side journal writer.  Thread-safe: workers record outcomes
/// concurrently; each record is one buffered write followed by a flush, so
/// a crash tears at most the final line (which the loader drops).  An
/// append failure degrades the journal (warn once, stop writing) — journal
/// I/O must never take down a batch.
class RunJournal {
 public:
  /// Open for append (the resume workflow keeps extending one file).  A
  /// new/empty file gets a framed format-header line.  Returns false with
  /// a message on failure.
  bool open(const std::string& path, std::string* error);

  bool isOpen() const;

  /// Append one outcome (append + flush under the writer mutex).
  void record(const JournalEntry& e);

  const std::string& path() const noexcept { return path_; }
  std::uint64_t recorded() const;

 private:
  mutable std::mutex mutex_;
  std::ofstream out_;
  std::string path_;
  std::uint64_t recorded_ = 0;
  bool degraded_ = false;
};

}  // namespace cmc::service
