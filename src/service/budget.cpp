#include "service/budget.hpp"

#include <string>

namespace cmc::service {

void BudgetToken::check() {
  if (limits_.deadlineSeconds > 0.0) {
    const double elapsed = timer_.seconds();
    if (elapsed > limits_.deadlineSeconds) {
      throw symbolic::CancelledError(
          symbolic::CancelReason::Deadline,
          "deadline exceeded: " + std::to_string(elapsed) + " s > " +
              std::to_string(limits_.deadlineSeconds) + " s");
    }
  }
  if (limits_.nodeBudget > 0 && mgr_->liveNodeCount() > limits_.nodeBudget) {
    // Live nodes include garbage until the next sweep; only declare
    // MemoryOut when the *reachable* set is over budget.
    mgr_->collectGarbage();
    const std::uint64_t live = mgr_->liveNodeCount();
    if (live > limits_.nodeBudget) {
      throw symbolic::CancelledError(
          symbolic::CancelReason::NodeBudget,
          "node budget exceeded: " + std::to_string(live) + " live nodes > " +
              std::to_string(limits_.nodeBudget));
    }
  }
}

}  // namespace cmc::service
