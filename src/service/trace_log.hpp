// Structured run tracing (service layer): a thread-safe JSONL event stream.
//
// Every job emits a sequence of single-line JSON events (job_start,
// obligation_start, attempt, retry, obligation_end, job_end — see
// scheduler.cpp) through a RunTrace.  The trace buffers events in memory
// (so tests can assert on them) and optionally appends each line to an
// ostream sink as it happens, which is how `cmc` streams
// <model>.trace.jsonl while the batch is still running.
//
// JsonObject is the deliberately tiny JSON builder used for both events and
// the summary report: insertion-ordered keys, no nesting except through
// putRaw(), everything serialized eagerly.  The repo has no JSON
// dependency, and the service's output is flat enough not to want one.
#pragma once

#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "util/timer.hpp"

namespace cmc::service {

/// Escape a string for inclusion in a JSON string literal.
std::string jsonEscape(std::string_view s);

/// Serialize a double the way JSON wants it (no inf/nan, %g precision).
std::string jsonNumber(double value);

class JsonObject {
 public:
  JsonObject& put(const std::string& key, std::string_view value);
  JsonObject& put(const std::string& key, const char* value) {
    return put(key, std::string_view(value));
  }
  JsonObject& putBool(const std::string& key, bool value);
  JsonObject& putUint(const std::string& key, std::uint64_t value);
  JsonObject& putDouble(const std::string& key, double value);
  /// Insert a pre-serialized JSON value (object, array, ...) verbatim.
  JsonObject& putRaw(const std::string& key, std::string_view json);

  /// The serialized object, e.g. {"event": "job_start", "t": 0.01}.
  std::string str() const;

 private:
  JsonObject& putSerialized(const std::string& key, std::string value);

  std::string body_;  ///< comma-joined "key": value pairs
};

class RunTrace {
 public:
  /// Tag for a trace that drops every event.  Callers with no trace sink
  /// (batch runs without --trace) use this so the hot path can skip the
  /// JSON serialization entirely — check enabled() before building the
  /// JsonObject, since the argument is evaluated either way.
  struct Disabled {};

  RunTrace() = default;
  /// Events are additionally appended (and flushed) to `sink`; the sink
  /// must outlive the trace.  Pass nullptr for in-memory only.
  explicit RunTrace(std::ostream* sink) : sink_(sink) {}
  explicit RunTrace(Disabled) : enabled_(false) {}

  /// False when this trace discards events: skip building them.
  bool enabled() const { return enabled_; }

  /// Append one event line.  Thread-safe; called from pool workers.
  void emit(const JsonObject& event);

  /// Snapshot of all emitted lines.
  std::vector<std::string> lines() const;

  /// Number of emitted lines containing `needle` (test/assertion helper).
  std::size_t countContaining(std::string_view needle) const;

  /// Seconds since construction; the "t" field of every event.
  double elapsedSeconds() const { return timer_.seconds(); }

 private:
  mutable std::mutex mutex_;
  bool enabled_ = true;
  std::ostream* sink_ = nullptr;
  std::vector<std::string> lines_;
  WallTimer timer_;
};

}  // namespace cmc::service
