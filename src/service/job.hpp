// The batch verification service's job model (service layer, layer 1/3).
//
// A VerificationJob is a batch of models plus their specs: either an SMV
// program text (possibly multi-module, as accepted by smv::elaborateProgram)
// or an in-memory ModelFactory.  The service expands a job into independent
// *obligations* — one per (module, spec), plus one per spec on the composed
// system when `compose` is set — and fans them onto a thread pool.  Every
// obligation rebuilds its models in a fresh symbolic::Context because BDD
// managers are single-threaded (the same discipline as
// comp::runObligations).
//
// Verdicts extend the paper's two-valued M ⊨_r f with the resource-governed
// outcomes a production service needs (docs/THEORY.md maps them back to
// restricted satisfaction):
//   Holds / Fails    — the checker decided ⊨_r within budget;
//   Timeout          — the per-attempt wall-clock deadline expired;
//   MemoryOut        — the BDD live-node budget was exhausted;
//   Inconclusive     — both engines (partitioned and monolithic) exhausted
//                      their budget; nothing is known about ⊨_r;
//   Cancelled        — the run was interrupted (SIGINT/SIGTERM or an
//                      embedding's cancel flag) before a decision;
//   Error            — the obligation threw (parse error, bad model, ...)
//                      and the quarantine retry threw again.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "smv/elaborate.hpp"
#include "symbolic/engine_choice.hpp"

namespace cmc::service {

enum class Verdict {
  Holds,
  Fails,
  Timeout,
  MemoryOut,
  Inconclusive,
  Cancelled,
  Error,
};

const char* toString(Verdict v) noexcept;

/// Worst-of aggregation for a job's obligations: a definite Fails dominates
/// everything, then Error, then the budget verdicts, then Holds.
Verdict worseVerdict(Verdict a, Verdict b) noexcept;

/// Per-obligation resource budget, enforced cooperatively by BudgetToken
/// through CheckerOptions::cancelCheck.  Both limits apply *per attempt*:
/// an engine retry starts with a fresh deadline and a fresh BDD manager.
struct ObligationLimits {
  /// Wall-clock deadline in seconds; 0 = unlimited.
  double deadlineSeconds = 0.0;
  /// Budget of live BDD nodes in the obligation's manager; 0 = unlimited.
  /// Exceeding it first forces a garbage collection — only genuinely
  /// reachable nodes count against the budget.
  std::uint64_t nodeBudget = 0;
};

struct JobOptions {
  ObligationLimits limits;
  /// Also verify every spec on the composition of all modules (through the
  /// compositional rules, with a ProofTree certificate in the report).
  bool compose = false;
  /// First-attempt verification engine.  Auto resolves per obligation
  /// through symbolic::chooseEngine (capped materialization probe, run once
  /// during the job's elaboration snapshot); Partitioned/Monolithic force
  /// CheckerOptions::usePartitionedTrans directly; Bes runs the explicit
  /// BES solver (falling back to partitioned where it declines); Race runs
  /// BES and the symbolic engine concurrently per obligation — first sound
  /// verdict wins, the loser is cancelled.  The library default stays
  /// Partitioned for reproducible behavior; the cmc CLI defaults to Auto.
  symbolic::EngineMode engine = symbolic::EngineMode::Partitioned;
  /// Degradation policy: an obligation that exhausts its budget under one
  /// engine is retried once under the other before being reported
  /// Inconclusive.
  bool retryOtherEngine = true;
  /// CheckerOptions::clusterThreshold for the partitioned engine.
  std::uint64_t clusterThreshold = 1024;
  /// Sift variables (Manager::reorderSift) after elaboration, before
  /// checking — the service counterpart of `cmc_check --reorder`.
  bool reorderBeforeCheck = false;
  /// A cache/journal-replayed Fails may carry no counterexample (trace
  /// search is best-effort and older entries may predate it).  By default
  /// the replay stands and the trace notes trace_unavailable; with this
  /// set the obligation is re-checked so a trace can be derived.  Not part
  /// of the obligation fingerprint: it changes how a verdict is *served*,
  /// never the verdict.
  bool traceForce = false;
  /// Discharge composed obligations through the assume-guarantee learning
  /// engine (agr::runLearnedJob) where the spec shape admits it, falling
  /// back to the direct composed check otherwise.  Like traceForce this is
  /// not part of the obligation fingerprint: the learned verdict is the
  /// same ⊨_r verdict, derived differently.
  bool learn = false;
  /// Provenance of a synthetic assumption/environment module composed into
  /// this job's model (agr teacher queries): the learned automaton's
  /// content digest, or a per-step tag for membership queries.  Folded into
  /// every obligation fingerprint so premise queries against two different
  /// assumptions can never alias each other in the obligation cache.
  /// Empty for ordinary jobs.
  std::string assumptionDigest;
};

/// Builds a job's modules inside a fresh per-obligation context.  Used for
/// in-memory systems; called concurrently from worker threads (once per
/// obligation attempt), so it must be thread-safe and deterministic.
using ModelFactory =
    std::function<std::vector<smv::ElaboratedModule>(symbolic::Context&)>;

struct VerificationJob {
  /// Job name, used in trace events and report paths.
  std::string name;
  /// SMV program text; ignored when `factory` is set.
  std::string smvText;
  /// In-memory model builder (takes precedence over smvText).
  ModelFactory factory;
  /// Provenance recorded in the report (e.g. the .smv path); may be empty.
  std::string sourcePath;
  /// When non-empty, check only the obligation with this id
  /// ("<target>/<spec name>"); every other enumerated obligation is
  /// dropped before dispatch.  An id matching nothing yields a single
  /// Error obligation.  This is how a cluster shard checks exactly the
  /// obligation the coordinator routed to it.
  std::string only;
  JobOptions options;
};

/// One engine attempt of one obligation.
struct AttemptRecord {
  std::string engine;  ///< "partitioned", "monolithic", or "bes"
  Verdict verdict = Verdict::Error;
  double seconds = 0.0;
  std::uint64_t peakLiveNodes = 0;
  double cacheHitRate = 0.0;
  // Phase breakdown of `seconds`.  Snapshot-backed attempts pay importMs
  // (cross-manager copy of the elaborated BDDs) instead of elaborateMs
  // (full parse + elaboration); fixpointMs is the checker proper.
  double elaborateMs = 0.0;
  double importMs = 0.0;
  double fixpointMs = 0.0;
};

struct ObligationOutcome {
  std::string id;        ///< "<target>/<spec name>"
  std::string target;    ///< module name, or "composed"
  std::string spec;      ///< spec name (module.SPECn)
  std::string specText;  ///< rendered CTL formula
  Verdict verdict = Verdict::Error;
  /// "checked" when the verdict came from running the checker, "cache"
  /// when it was served by the obligation cache, "journal" when replayed
  /// from a prior run's journal on --resume (zero attempts either way).
  std::string verdictSource = "checked";
  /// Content fingerprint used to address the obligation cache; empty when
  /// fingerprinting failed or the cache is disabled.
  std::string fingerprint;
  /// Name of the cluster shard that served this obligation; empty for
  /// local runs.  Set by the coordinator when it merges forwarded
  /// verdicts, so a clustered report still explains where each verdict
  /// came from.
  std::string shard;
  /// True when the coordinator hedged this obligation's in-flight CHECK to
  /// a second shard after its latency threshold; `shard` names the lane
  /// whose sound verdict arrived first (the hedge winner), the loser was
  /// cancelled.  Always false for local runs and unhedged forwards.
  bool hedged = false;
  /// True when this obligation's decided verdict became a new cache entry.
  bool cacheInserted = false;
  bool retried = false;
  /// Proof rule that decided the obligation: "direct" for a plain
  /// component check; for composed obligations the property class and rule
  /// ("universal (Rule 2)", "existential (Rules 1/3)", "global fallback").
  std::string rule;
  std::vector<AttemptRecord> attempts;
  /// JSON object describing how EngineMode::Auto resolved for this
  /// obligation (chooseEngine's inputs and decision); empty when the
  /// engine was forced by options or the verdict came without attempts.
  std::string engineChoiceJson;
  double seconds = 0.0;        ///< total across attempts
  std::string error;           ///< non-empty for Verdict::Error
  std::string counterexample;  ///< trace for failing AG specs, if derivable
  std::string proofJson;       ///< ProofTree certificate (composed only)
  /// JSON object describing the assume-guarantee learning run that decided
  /// (verdict_source "learned": assumption size, query counts, partition)
  /// or declined (fallback_reason) this composed obligation.  Empty for
  /// ordinary obligations.
  std::string learnedJson;
};

struct JobReport {
  std::string job;
  std::string source;
  JobOptions options;
  Verdict verdict = Verdict::Holds;
  double wallSeconds = 0.0;
  std::vector<ObligationOutcome> obligations;
  /// Obligation-cache traffic of this job: verdicts served from the cache,
  /// consults that missed, and newly decided verdicts offered to it.
  std::uint64_t cacheHits = 0;
  std::uint64_t cacheMisses = 0;
  std::uint64_t cacheInserts = 0;
  /// Obligations replayed from a prior run's journal (--resume).
  std::uint64_t journalHits = 0;

  bool allHold() const noexcept { return verdict == Verdict::Holds; }
  /// The summary JSON written next to the model (schema in README.md).
  std::string toJson() const;
};

}  // namespace cmc::service
