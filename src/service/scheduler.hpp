// The batch job scheduler (service layer): accepts VerificationJobs, fans
// their obligations onto a ThreadPool, enforces per-obligation resource
// budgets, applies the engine degradation/retry policy, consults the
// content-addressed obligation cache before dispatching the checker, and
// emits the structured JSONL run trace plus a summary JobReport per job.
//
// Scheduling model
//  - Each job is elaborated ONCE into a shared, immutable elaboration
//    snapshot (service/snapshot.hpp); snapshot builds are themselves pool
//    tasks, so a batch's scout phase runs in parallel.  The snapshot
//    enumerates the obligations — one per (module, spec); with
//    JobOptions::compose also one per spec on the composition, discharged
//    through the compositional rules with a ProofTree certificate — and,
//    under EngineMode::Auto, resolves the engine choice per target.
//  - Obligations are independent: each attempt runs in a fresh
//    symbolic::Context on the worker thread (BDD managers are
//    single-threaded).  Text jobs *import* their BDDs from the snapshot
//    through bdd::Importer — a linear copy of the reachable DAG into a
//    pre-sized arena — instead of re-parsing and re-elaborating; factory
//    jobs and quarantine retries rebuild from scratch.  An engine retry is
//    still meaningful after MemoryOut — the retry starts with an empty
//    manager either way.
//  - Budgets are enforced cooperatively: BudgetToken is installed as the
//    checker's CheckerOptions::cancelCheck hook, so a blown-up fixpoint
//    aborts with Timeout/MemoryOut instead of hanging the worker.
//  - Degradation policy: a budget-exhausted attempt under the partitioned
//    engine is retried once under the monolithic engine (and vice versa);
//    only when both exhaust their budget is the obligation Inconclusive.
//  - Caching: the scout phase fingerprints every obligation
//    (smv::canonicalModule + spec + restriction + options); a worker first
//    consults the service's ObligationCache and serves a hit without any
//    checker attempt (verdict_source "cache" in trace and report).  Only
//    decided verdicts (Holds/Fails) are inserted.
//  - Quarantine: an attempt that throws an unexpected exception (anything
//    other than the budget/cancel CancelledError) is retried once on a
//    fresh Context; a second throw marks the obligation Error with the
//    exception recorded in the report.  A poisoned obligation can never
//    take down its siblings — the worker task itself never throws.
//  - Durability: with a RunJournal attached, every final outcome is
//    appended (with a per-line checksum, flushed) the moment it is
//    decided; with a JournalReplay, already-decided obligations are served
//    from the journal (verdict_source "journal") without any attempt.
//  - Cancellation: ServiceOptions::cancelFlag is polled at obligation
//    pickup and inside the checker's cancel hook; once set, running
//    attempts abort and queued obligations drain as Cancelled, so a batch
//    winds down in bounded time with everything decided so far flushed.
#pragma once

#include <atomic>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "service/job.hpp"
#include "service/journal.hpp"
#include "service/metrics.hpp"
#include "service/obligation_cache.hpp"
#include "service/snapshot.hpp"
#include "service/trace_log.hpp"
#include "util/thread_pool.hpp"

namespace cmc::service {

struct ServiceOptions {
  /// Worker threads for the obligation pool (0 = hardware concurrency).
  unsigned threads = 0;
  /// Consult/maintain the content-addressed obligation cache: identical
  /// (module, spec, restriction, options) obligations are verified once
  /// per service and served from memory afterwards.
  bool cacheEnabled = true;
  /// In-memory cache capacity (entries across shards).
  std::size_t cacheCapacity = 1 << 16;
  /// Directory of the persistent JSONL verdict store (cmc --cache-dir);
  /// empty = in-memory only.
  std::string cacheDir;
  /// Cooperative cancellation: when non-null and set, workers abort their
  /// current attempt (verdict Cancelled) and drain queued obligations
  /// without running them.  The flag is owned by the embedder — cmc points
  /// it at the flag its SIGINT/SIGTERM handler sets.
  const std::atomic<bool>* cancelFlag = nullptr;
  /// Elaboration snapshots of text jobs are memoized per service, keyed by
  /// (engine mode, compose, program text), so a warm server request —
  /// resubmitting a model it has seen — skips parse + elaboration entirely
  /// and goes straight to obligation dispatch.  0 disables the memo (every
  /// job builds its own snapshot; sharing within the job still applies).
  std::size_t snapshotCacheCapacity = 16;
  /// Scheduler observability: when non-null, obligation dispatch and
  /// verdicts are counted (obligations_dispatched, obligations_completed,
  /// per-source obligations_{checked,cache,journal}, per-verdict
  /// verdict_*) and per-obligation latency lands in the
  /// obligation_seconds histogram.  Owned by the embedder (cmc serve
  /// shares one registry between server and scheduler); must outlive the
  /// service.
  MetricsRegistry* metrics = nullptr;
};

class VerificationService {
 public:
  explicit VerificationService(ServiceOptions opts = {})
      : pool_(opts.threads),
        cancel_(opts.cancelFlag),
        metrics_(opts.metrics),
        snapshotCapacity_(opts.snapshotCacheCapacity) {
    if (opts.cacheEnabled) {
      ObligationCache::Options copts;
      copts.capacity = opts.cacheCapacity;
      copts.dir = opts.cacheDir;
      cache_ = std::make_unique<ObligationCache>(std::move(copts));
    }
  }

  /// Run one job to completion; events go to `trace` when non-null.
  /// Outcomes are journaled to `journal` (when open) as they are decided;
  /// obligations found decided in `replay` are served without attempts.
  /// `cancel` is a per-call cancel flag, polled alongside the service-wide
  /// ServiceOptions::cancelFlag — `cmc serve` points it at the per-request
  /// flag its CANCEL command raises, so one request winds down without
  /// touching its neighbours.
  JobReport run(const VerificationJob& job, RunTrace* trace = nullptr,
                RunJournal* journal = nullptr,
                const JournalReplay* replay = nullptr,
                const std::atomic<bool>* cancel = nullptr);

  /// Run a batch: all obligations of all jobs share the pool, so a wide
  /// job cannot starve a narrow one queued behind it (obligations
  /// interleave at task granularity).  Reports are returned in job order.
  /// Safe to call concurrently from several threads (the server does):
  /// the pool, cache, journal, and trace are all thread-safe, and each
  /// call owns its own futures.
  std::vector<JobReport> runBatch(const std::vector<VerificationJob>& jobs,
                                  RunTrace* trace = nullptr,
                                  RunJournal* journal = nullptr,
                                  const JournalReplay* replay = nullptr,
                                  const std::atomic<bool>* cancel = nullptr);

  unsigned threads() const noexcept { return pool_.size(); }
  /// Obligations submitted but not yet picked up by a worker (the
  /// queue-depth metric recorded in obligation_start events).
  std::size_t queuedObligations() const { return pool_.pendingTasks(); }

  /// The obligation cache, or nullptr when disabled.
  ObligationCache* cache() noexcept { return cache_.get(); }
  const ObligationCache* cache() const noexcept { return cache_.get(); }

  /// True once the embedder's cancel flag has been raised.
  bool cancelRequested() const noexcept {
    return cancel_ != nullptr && cancel_->load(std::memory_order_relaxed);
  }

 private:
  /// Resolve a job's elaboration snapshot: text jobs are served from the
  /// LRU memo when possible (snapshot_reuses metric); misses and factory
  /// jobs submit a buildSnapshot task to the pool.  The returned future is
  /// resolved by the runBatch caller *before* any obligation is submitted,
  /// so pool workers never block on it.
  std::shared_future<SnapshotResult> snapshotFor(const VerificationJob& job,
                                                 bool wantCanon);

  ThreadPool pool_;
  const std::atomic<bool>* cancel_ = nullptr;
  MetricsRegistry* metrics_ = nullptr;
  std::unique_ptr<ObligationCache> cache_;

  std::size_t snapshotCapacity_ = 16;
  std::mutex snapshotMutex_;
  /// LRU order, most recent first; values are keys of snapshotCache_.
  std::list<std::string> snapshotLru_;
  struct SnapshotSlot {
    std::shared_future<SnapshotResult> future;
    std::list<std::string>::iterator lruIt;
  };
  std::unordered_map<std::string, SnapshotSlot> snapshotCache_;
};

}  // namespace cmc::service
