// The batch job scheduler (service layer): accepts VerificationJobs, fans
// their obligations onto a ThreadPool, enforces per-obligation resource
// budgets, applies the engine degradation/retry policy, and emits the
// structured JSONL run trace plus a summary JobReport per job.
//
// Scheduling model
//  - A job is expanded (on the caller's thread, in a scratch context) into
//    one obligation per (module, spec); with JobOptions::compose also one
//    per spec on the composition, discharged through the compositional
//    rules with a ProofTree certificate.
//  - Obligations are independent: each attempt rebuilds its models in a
//    fresh symbolic::Context on the worker thread (BDD managers are
//    single-threaded; same discipline as comp::runObligations).  This also
//    makes an engine retry meaningful after MemoryOut — the retry starts
//    with an empty manager.
//  - Budgets are enforced cooperatively: BudgetToken is installed as the
//    checker's CheckerOptions::cancelCheck hook, so a blown-up fixpoint
//    aborts with Timeout/MemoryOut instead of hanging the worker.
//  - Degradation policy: a budget-exhausted attempt under the partitioned
//    engine is retried once under the monolithic engine (and vice versa);
//    only when both exhaust their budget is the obligation Inconclusive.
#pragma once

#include "service/job.hpp"
#include "service/trace_log.hpp"
#include "util/thread_pool.hpp"

namespace cmc::service {

struct ServiceOptions {
  /// Worker threads for the obligation pool (0 = hardware concurrency).
  unsigned threads = 0;
};

class VerificationService {
 public:
  explicit VerificationService(ServiceOptions opts = {})
      : pool_(opts.threads) {}

  /// Run one job to completion; events go to `trace` when non-null.
  JobReport run(const VerificationJob& job, RunTrace* trace = nullptr);

  /// Run a batch: all obligations of all jobs share the pool, so a wide
  /// job cannot starve a narrow one queued behind it (obligations
  /// interleave at task granularity).  Reports are returned in job order.
  std::vector<JobReport> runBatch(const std::vector<VerificationJob>& jobs,
                                  RunTrace* trace = nullptr);

  unsigned threads() const noexcept { return pool_.size(); }
  /// Obligations submitted but not yet picked up by a worker (the
  /// queue-depth metric recorded in obligation_start events).
  std::size_t queuedObligations() const { return pool_.pendingTasks(); }

 private:
  ThreadPool pool_;
};

}  // namespace cmc::service
