#include "service/journal.hpp"

#include <array>
#include <cstdio>

#include "service/trace_log.hpp"
#include "util/failpoint.hpp"
#include "util/version.hpp"

namespace cmc::service {

namespace {

constexpr const char* kJournalFormat = "cmc-journal-v1";

std::array<std::uint32_t, 256> makeCrcTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xedb88320u ^ (c >> 1) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

/// Parse the JSON string literal starting at s[i] (which must be '"').
/// Returns false on malformed or truncated input.  Shared by the journal
/// loader and the obligation cache's store loader.
bool parseJsonString(const std::string& s, std::size_t* i, std::string* out) {
  if (*i >= s.size() || s[*i] != '"') return false;
  ++*i;
  out->clear();
  while (*i < s.size()) {
    const char c = s[*i];
    if (c == '"') {
      ++*i;
      return true;
    }
    if (c == '\\') {
      if (*i + 1 >= s.size()) return false;
      const char esc = s[*i + 1];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'n': out->push_back('\n'); break;
        case 't': out->push_back('\t'); break;
        case 'r': out->push_back('\r'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'u': {
          // jsonEscape only emits \u00XX for control characters.
          if (*i + 5 >= s.size()) return false;
          unsigned code = 0;
          for (int k = 2; k <= 5; ++k) {
            const char h = s[*i + k];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return false;
          }
          out->push_back(static_cast<char>(code & 0xff));
          *i += 4;
          break;
        }
        default: return false;
      }
      *i += 2;
      continue;
    }
    out->push_back(c);
    ++*i;
  }
  return false;  // unterminated literal (truncated line)
}

/// Find `"key": ` in the flat object and return the start index of its
/// value, or npos.  All our keys are written by JsonObject in a fixed
/// order before any free-text value, so a key name inside a string value
/// cannot precede the real key.
std::size_t findValue(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\": ";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return std::string::npos;
  return at + needle.size();
}

std::string crcHex(std::uint32_t crc) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%08x", crc);
  return buf;
}

}  // namespace

std::uint32_t crc32(std::string_view bytes) noexcept {
  static const std::array<std::uint32_t, 256> table = makeCrcTable();
  std::uint32_t c = 0xffffffffu;
  for (unsigned char b : bytes) {
    c = table[(c ^ b) & 0xffu] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

std::string frameLine(const std::string& payloadJson) {
  CMC_ASSERT(payloadJson.size() >= 2 && payloadJson.front() == '{' &&
             payloadJson.back() == '}');
  std::string out = payloadJson;
  out.pop_back();  // drop the closing brace; restored after the crc field
  out += ", \"crc\": \"";
  out += crcHex(crc32(payloadJson));
  out += "\"}";
  return out;
}

std::optional<std::string> unframeLine(std::string_view line) {
  // The framing suffix is fixed-width: `, "crc": "xxxxxxxx"}`.
  static constexpr std::string_view kPrefix = ", \"crc\": \"";
  static constexpr std::size_t kSuffixLen = kPrefix.size() + 8 + 2;
  if (line.size() < kSuffixLen + 2 || line.back() != '}') return std::nullopt;
  const std::size_t at = line.size() - kSuffixLen;
  if (line.substr(at, kPrefix.size()) != kPrefix) return std::nullopt;
  const std::string_view hex = line.substr(at + kPrefix.size(), 8);
  if (line.substr(at + kPrefix.size() + 8) != "\"}") return std::nullopt;
  std::uint32_t stored = 0;
  for (char h : hex) {
    stored <<= 4;
    if (h >= '0' && h <= '9') stored |= static_cast<std::uint32_t>(h - '0');
    else if (h >= 'a' && h <= 'f') stored |= static_cast<std::uint32_t>(h - 'a' + 10);
    else return std::nullopt;
  }
  std::string payload(line.substr(0, at));
  payload += '}';
  if (crc32(payload) != stored) return std::nullopt;
  return payload;
}

bool jsonExtractString(const std::string& line, const std::string& key,
                       std::string* out) {
  std::size_t i = findValue(line, key);
  if (i == std::string::npos) return false;
  return parseJsonString(line, &i, out);
}

bool jsonExtractDouble(const std::string& line, const std::string& key,
                       double* out) {
  const std::size_t i = findValue(line, key);
  if (i == std::string::npos) return false;
  try {
    *out = std::stod(line.substr(i));
  } catch (...) {
    return false;
  }
  return true;
}

bool jsonExtractUint(const std::string& line, const std::string& key,
                     std::uint64_t* out) {
  const std::size_t i = findValue(line, key);
  if (i == std::string::npos || i >= line.size()) return false;
  if (line[i] < '0' || line[i] > '9') return false;  // no sign, no quotes
  try {
    *out = std::stoull(line.substr(i));
  } catch (...) {
    return false;
  }
  return true;
}

bool jsonExtractBool(const std::string& line, const std::string& key,
                     bool* out) {
  const std::size_t i = findValue(line, key);
  if (i == std::string::npos) return false;
  if (line.compare(i, 4, "true") == 0) {
    *out = true;
    return true;
  }
  if (line.compare(i, 5, "false") == 0) {
    *out = false;
    return true;
  }
  return false;
}

bool verdictFromString(std::string_view text, Verdict* out) noexcept {
  static constexpr Verdict kAll[] = {
      Verdict::Holds,     Verdict::Fails, Verdict::Timeout,
      Verdict::MemoryOut, Verdict::Inconclusive,
      Verdict::Cancelled, Verdict::Error,
  };
  for (Verdict v : kAll) {
    if (text == toString(v)) {
      *out = v;
      return true;
    }
  }
  return false;
}

std::string journalKey(const JournalEntry& e) {
  if (!e.fingerprint.empty()) return "fp:" + e.fingerprint;
  // Identity fallback: stable for a re-run of the same command line; the
  // \x1f separators keep concatenation unambiguous.
  return "id:" + e.job + "\x1f" + e.id + "\x1f" + e.specText;
}

namespace {

std::string entryLine(const JournalEntry& e) {
  JsonObject obj;
  obj.put("fp", e.fingerprint)
      .put("job", e.job)
      .put("id", e.id)
      .put("target", e.target)
      .put("spec", e.spec)
      .put("spec_text", e.specText)
      .put("verdict", toString(e.verdict))
      .put("rule", e.rule)
      .put("engine", e.engine)
      .putDouble("seconds", e.seconds);
  if (!e.error.empty()) obj.put("error", e.error);
  if (!e.counterexample.empty()) obj.put("counterexample", e.counterexample);
  // The proof certificate is stored as an escaped JSON *string*, so the
  // tolerant loader never balances braces (same convention as the cache).
  if (!e.proofJson.empty()) obj.put("proof", e.proofJson);
  return frameLine(obj.str());
}

/// Strict inverse of entryLine's payload; any deviation marks the line
/// corrupt.  The payload has already passed the checksum, so failures here
/// mean a foreign or future-format line, not a torn write.
bool parseEntryLine(const std::string& payload, JournalEntry* e) {
  std::string verdict;
  if (!jsonExtractString(payload, "id", &e->id) ||
      !jsonExtractString(payload, "verdict", &verdict) ||
      !verdictFromString(verdict, &e->verdict)) {
    return false;
  }
  jsonExtractString(payload, "fp", &e->fingerprint);
  jsonExtractString(payload, "job", &e->job);
  jsonExtractString(payload, "target", &e->target);
  jsonExtractString(payload, "spec", &e->spec);
  jsonExtractString(payload, "spec_text", &e->specText);
  jsonExtractString(payload, "rule", &e->rule);
  jsonExtractString(payload, "engine", &e->engine);
  jsonExtractDouble(payload, "seconds", &e->seconds);
  jsonExtractString(payload, "error", &e->error);
  jsonExtractString(payload, "counterexample", &e->counterexample);
  jsonExtractString(payload, "proof", &e->proofJson);
  return true;
}

}  // namespace

JournalReplay loadJournal(const std::string& path) {
  JournalReplay replay;
  std::ifstream in(path);
  if (!in) return replay;  // no journal — fresh run
  replay.found = true;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    try {
      CMC_FAILPOINT("journal.load");
      const std::optional<std::string> payload = unframeLine(line);
      if (!payload.has_value()) {
        ++replay.corrupt;
        continue;
      }
      std::string format;
      if (jsonExtractString(*payload, "format", &format)) {
        // Header line; a future-format journal is not replayable.
        if (format != kJournalFormat) ++replay.corrupt;
        continue;
      }
      JournalEntry e;
      if (!parseEntryLine(*payload, &e)) {
        ++replay.corrupt;
        continue;
      }
      ++replay.lines;
      if (e.verdict == Verdict::Holds || e.verdict == Verdict::Fails) {
        // Last write wins: a resumed run's fresh verdict supersedes an
        // older entry for the same obligation.
        replay.decided[journalKey(e)] = std::move(e);
      } else {
        ++replay.undecided;
      }
    } catch (const std::exception&) {
      ++replay.corrupt;
    }
  }
  return replay;
}

bool RunJournal::open(const std::string& path, std::string* error) {
  std::lock_guard<std::mutex> lock(mutex_);
  bool existed = false;
  bool endsWithNewline = true;
  {
    std::ifstream probe(path, std::ios::binary);
    if (probe.good()) {
      probe.seekg(0, std::ios::end);
      if (probe.tellg() > 0) {
        existed = true;
        probe.seekg(-1, std::ios::end);
        char last = '\n';
        probe.get(last);
        endsWithNewline = last == '\n';
      }
    }
  }
  out_.open(path, std::ios::app);
  if (!out_) {
    if (error != nullptr) *error = "cannot open journal " + path;
    return false;
  }
  path_ = path;
  degraded_ = false;
  if (!existed) {
    // The header stamps the writing build: "format" gates replayability,
    // "cmc_version" diagnoses mixed-version journals (extra keys are
    // ignored by older loaders).
    out_ << frameLine(JsonObject()
                          .put("format", kJournalFormat)
                          .put("cmc_version", util::versionString())
                          .str())
         << '\n';
    out_.flush();
  } else if (!endsWithNewline) {
    // A crash tore the final append mid-line (no trailing newline).
    // Terminate the torn tail so our first entry starts a fresh line —
    // otherwise it would concatenate onto the tail and both would fail
    // the checksum on the next load.
    out_ << '\n';
    out_.flush();
  }
  return true;
}

bool RunJournal::isOpen() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return out_.is_open() && !degraded_;
}

void RunJournal::record(const JournalEntry& e) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!out_.is_open() || degraded_) return;
  try {
    CMC_FAILPOINT("journal.append");
    // One buffered write + flush: the line lands with a single append, so
    // a crash leaves whole lines plus at most one torn tail.
    out_ << entryLine(e) << '\n';
    out_.flush();
    if (!out_) throw Error("journal: write to " + path_ + " failed");
    ++recorded_;
  } catch (const std::exception& ex) {
    // Journal I/O must never take down the batch: degrade to no journal
    // (the run continues; only resumability is lost) and say so once.
    degraded_ = true;
    std::fprintf(stderr, "journal: %s; continuing without a journal\n",
                 ex.what());
  }
}

std::uint64_t RunJournal::recorded() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return recorded_;
}

}  // namespace cmc::service
