#include "service/scheduler.hpp"

#include <algorithm>
#include <chrono>
#include <future>
#include <map>
#include <optional>
#include <thread>
#include <utility>

#include "bes/bes_checker.hpp"
#include "comp/classify.hpp"
#include "comp/verifier.hpp"
#include "service/budget.hpp"
#include "symbolic/composition.hpp"
#include "util/failpoint.hpp"
#include "util/timer.hpp"
#include "util/version.hpp"

namespace cmc::service {

namespace {

/// The cooperative cancellation sources an obligation polls: the
/// service-wide flag (SIGINT/SIGTERM wind-down of the whole embedder), the
/// per-batch flag (one server request's CANCEL), and — under --engine race
/// — the per-lane race flag the winning lane raises to stop the loser.
/// Any one aborts.
struct CancelFlags {
  const std::atomic<bool>* service = nullptr;
  const std::atomic<bool>* batch = nullptr;
  const std::atomic<bool>* race = nullptr;

  bool requested() const noexcept {
    return (service != nullptr &&
            service->load(std::memory_order_relaxed)) ||
           (batch != nullptr && batch->load(std::memory_order_relaxed)) ||
           (race != nullptr && race->load(std::memory_order_relaxed));
  }
};

/// Pre-resolved metric instruments for the per-obligation hot path.  The
/// registry's get-or-create is a string-keyed map lookup under a mutex —
/// fine per batch, wasteful per obligation (an obligation touches up to
/// seven instruments; the AFS batch bench runs dozens per millisecond).
struct ObligationInstruments {
  explicit ObligationInstruments(MetricsRegistry& m)
      : dispatched(m.counter("obligations_dispatched")),
        completed(m.counter("obligations_completed")),
        sourceChecked(m.counter("obligations_checked")),
        sourceCache(m.counter("obligations_cache")),
        sourceJournal(m.counter("obligations_journal")),
        holds(m.counter("verdict_holds")),
        fails(m.counter("verdict_fails")),
        timeout(m.counter("verdict_timeout")),
        memoryOut(m.counter("verdict_memoryout")),
        inconclusive(m.counter("verdict_inconclusive")),
        cancelled(m.counter("verdict_cancelled")),
        error(m.counter("verdict_error")),
        elaborateSeconds(m.histogram("elaborate_seconds")),
        importSeconds(m.histogram("import_seconds")),
        fixpointSeconds(m.histogram("fixpoint_seconds")),
        obligationSeconds(m.histogram("obligation_seconds")) {}

  Counter& verdictCounter(Verdict v) const {
    switch (v) {
      case Verdict::Holds: return holds;
      case Verdict::Fails: return fails;
      case Verdict::Timeout: return timeout;
      case Verdict::MemoryOut: return memoryOut;
      case Verdict::Inconclusive: return inconclusive;
      case Verdict::Cancelled: return cancelled;
      case Verdict::Error: return error;
    }
    return error;
  }
  Counter& sourceCounter(const std::string& source) const {
    if (source == "cache") return sourceCache;
    if (source == "journal") return sourceJournal;
    return sourceChecked;
  }

  Counter& dispatched;
  Counter& completed;
  Counter& sourceChecked;
  Counter& sourceCache;
  Counter& sourceJournal;
  Counter& holds;
  Counter& fails;
  Counter& timeout;
  Counter& memoryOut;
  Counter& inconclusive;
  Counter& cancelled;
  Counter& error;
  LatencyHistogram& elaborateSeconds;
  LatencyHistogram& importSeconds;
  LatencyHistogram& fixpointSeconds;
  LatencyHistogram& obligationSeconds;
};

/// Everything a worker needs to run one obligation: the enumerated
/// identity (ObligationRef, shared with the cluster coordinator's scout)
/// plus the owning job.  Descriptors are copied into the pool task, so
/// only the job pointer must outlive the batch (the snapshot is kept
/// alive by the shared_ptr in every copy).
struct ObligationDesc : ObligationRef {
  const VerificationJob* job = nullptr;
  std::string jobName;
  /// The job's shared elaboration snapshot; null for factory jobs (their
  /// builder runs per attempt) — workers then rebuild from scratch.
  std::shared_ptr<const ElaborationSnapshot> snapshot;
};

std::vector<smv::ElaboratedModule> materialize(const VerificationJob& job,
                                               symbolic::Context& ctx) {
  std::vector<smv::ElaboratedModule> modules =
      job.factory ? job.factory(ctx) : smv::elaborateProgram(ctx, job.smvText);
  if (modules.empty()) {
    throw ModelError("job '" + job.name + "' has no modules");
  }
  return modules;
}

const char* engineName(bool partitioned) {
  return partitioned ? "partitioned" : "monolithic";
}

/// The concrete engine an attempt runs with.  Partitioned and Monolithic
/// are the two symbolic fixpoint engines; Bes is the explicit-state BES
/// solver.  EngineMode::Auto/Race are *policies* that resolve to lanes.
enum class Lane { Partitioned, Monolithic, Bes };

const char* laneName(Lane lane) {
  switch (lane) {
    case Lane::Partitioned: return "partitioned";
    case Lane::Monolithic: return "monolithic";
    case Lane::Bes: return "bes";
  }
  return "partitioned";
}

/// Budget-degradation target: the symbolic engines swap with each other; a
/// budget-stopped BES run degrades to the partitioned symbolic engine (the
/// one that never materializes a product).
Lane otherLane(Lane lane) {
  switch (lane) {
    case Lane::Partitioned: return Lane::Monolithic;
    case Lane::Monolithic: return Lane::Partitioned;
    case Lane::Bes: return Lane::Partitioned;
  }
  return Lane::Partitioned;
}

std::string choiceJson(const symbolic::EngineChoice& c) {
  return JsonObject()
      .put("engine", engineName(c.usePartitioned))
      .putBool("probed", c.probed)
      .putBool("probe_aborted", c.probeAborted)
      .putUint("conjuncts", static_cast<std::uint64_t>(c.conjuncts))
      .putUint("partition_nodes", c.partitionNodes)
      .putUint("monolithic_nodes", c.monolithicNodes)
      .putUint("cap_nodes", c.capNodes)
      .put("reason", c.reason)
      .str();
}

Verdict cancelVerdict(symbolic::CancelReason reason) {
  switch (reason) {
    case symbolic::CancelReason::Deadline: return Verdict::Timeout;
    case symbolic::CancelReason::NodeBudget: return Verdict::MemoryOut;
    case symbolic::CancelReason::External: return Verdict::Cancelled;
  }
  return Verdict::Cancelled;
}

std::string ruleName(comp::PropertyClass cls) {
  switch (cls) {
    case comp::PropertyClass::Universal: return "universal (Rule 2)";
    case comp::PropertyClass::Existential: return "existential (Rules 1/3)";
    default: return "global fallback";
  }
}

/// Best-effort counterexample for a failing spec; the verdict is already
/// decided, so a budget expiry during trace search just drops the trace.
std::string extractCounterexample(symbolic::Checker& checker,
                                  const ctl::Spec& spec) {
  try {
    if (const auto trace = checker.counterexampleTrace(spec.r, spec.f)) {
      return *trace;
    }
    if (const auto witness = checker.violationWitness(spec.r, spec.f)) {
      return "violating state: " + *witness;
    }
  } catch (const symbolic::CancelledError&) {
  }
  return "";
}

struct AttemptOutput {
  AttemptRecord record;
  bool decided = false;  ///< verdict is Holds/Fails (not budget/error)
  Lane lane = Lane::Partitioned;  ///< engine actually used
  /// EngineMode::Auto was resolved during this attempt (worker-side probe
  /// on the rebuild path); `choice` then carries the decision.
  bool autoResolved = false;
  symbolic::EngineChoice choice;
  /// Non-empty when a requested Bes lane fell back to Partitioned (the
  /// BES backend declined the obligation); carries the reason.
  std::string besFallback;
  std::string rule;
  std::string counterexample;
  std::string proofJson;
  std::string error;
};

/// One engine attempt.  With a snapshot (and `useSnapshot`), the worker
/// adopts the snapshot's variable layout into a context pre-sized from its
/// node counts and imports the BDDs it needs — a linear DAG copy in DFS
/// order, no rehashing mid-import.  Otherwise (factory jobs, quarantine
/// retries) it rebuilds from scratch as before.  `forceEngine` fixes the
/// engine (retries, non-Auto modes, snapshot-resolved Auto); when absent
/// the mode is Auto without a snapshot and the worker resolves it here.
AttemptOutput runAttempt(const ObligationDesc& d,
                         std::optional<Lane> forceLane, bool useSnapshot,
                         const CancelFlags& cancel) {
  AttemptOutput out;
  const JobOptions& jopts = d.job->options;
  const ElaborationSnapshot* snap =
      useSnapshot ? d.snapshot.get() : nullptr;

  // Lane, when already determined: forced by the caller or fixed by mode.
  Lane lane = Lane::Partitioned;
  bool engineKnown = false;
  if (forceLane.has_value()) {
    lane = *forceLane;
    engineKnown = true;
  } else if (jopts.engine == symbolic::EngineMode::Partitioned) {
    lane = Lane::Partitioned;
    engineKnown = true;
  } else if (jopts.engine == symbolic::EngineMode::Monolithic) {
    lane = Lane::Monolithic;
    engineKnown = true;
  } else if (jopts.engine == symbolic::EngineMode::Bes) {
    lane = Lane::Bes;
    engineKnown = true;
  }
  out.record.engine = engineKnown ? laneName(lane) : "auto";

  WallTimer timer;
  try {
    symbolic::Context ctx(
        snap != nullptr ? workerArenaCapacity(snap->liveNodes)
                        : std::size_t{1} << 14,
        snap != nullptr ? workerCacheCapacity(snap->liveNodes)
                        : std::size_t{1} << 14);
    bdd::Manager& mgr = ctx.mgr();

    std::vector<smv::ElaboratedModule> modules;
    std::size_t localIndex = d.moduleIndex;
    if (snap != nullptr) {
      // Snapshot path: Auto was resolved by the caller (runAttempts reads
      // the snapshot's probed choice), so `partitioned` is known and the
      // import copies exactly what the chosen engine needs.
      CMC_ASSERT(engineKnown);
      WallTimer importTimer;
      ctx.adoptVariablesFrom(*snap->ctx);
      bdd::Importer imp(mgr, snap->ctx->mgr());
      if (!d.composed) {
        modules.push_back(importModule(
            ctx, imp, snap->modules.at(d.moduleIndex),
            /*wantMonolithic=*/lane == Lane::Monolithic));
        localIndex = 0;
      } else {
        modules.reserve(snap->modules.size());
        for (const smv::ElaboratedModule& mod : snap->modules) {
          // Composition operates on the partitions; component monolithics
          // are never needed.
          modules.push_back(importModule(ctx, imp, mod,
                                         /*wantMonolithic=*/false));
        }
      }
      out.record.importMs = importTimer.seconds() * 1000.0;
    } else {
      WallTimer elaborateTimer;
      modules = materialize(*d.job, ctx);
      out.record.elaborateMs = elaborateTimer.seconds() * 1000.0;
    }

    if (!engineKnown) {
      // Auto (or Race on the rebuild path) without a snapshot: probe on
      // the freshly built system.  For a composed obligation the product
      // is exactly what we refuse to build speculatively, so default to
      // the engine that never materializes it.
      if (!d.composed) {
        out.choice = symbolic::chooseEngine(modules.at(localIndex).sys);
      } else {
        out.choice.usePartitioned = true;
        out.choice.reason =
            "composed obligation without snapshot defaults to partitioned";
      }
      lane = out.choice.usePartitioned ? Lane::Partitioned
                                       : Lane::Monolithic;
      out.autoResolved = true;
    }

    const ctl::Spec& spec = modules.at(localIndex).specs.at(d.specIndex);
    if (lane == Lane::Bes) {
      // The BES backend declines what it cannot decide exactly; the
      // attempt then runs the partitioned symbolic engine and records why.
      std::string whyNot;
      const bool supported =
          !d.composed &&
          bes::BesChecker::supports(modules.at(localIndex).sys, spec,
                                    &whyNot);
      if (d.composed) {
        whyNot = "composed obligation: BES checks component systems only";
      }
      if (!supported) {
        out.besFallback = whyNot;
        lane = Lane::Partitioned;
      }
    }
    out.lane = lane;
    out.record.engine = laneName(lane);

    if (jopts.reorderBeforeCheck) mgr.reorderSift();

    BudgetToken token(mgr, jopts.limits);
    symbolic::CheckerOptions copts;
    copts.usePartitionedTrans = lane != Lane::Monolithic;
    copts.clusterThreshold = jopts.clusterThreshold;
    copts.cancelCheck = [&token, &cancel] {
      if (cancel.requested()) {
        throw symbolic::CancelledError(symbolic::CancelReason::External,
                                       "run interrupted");
      }
      token.check();
    };

    const std::uint64_t lookups0 = mgr.stats().cacheLookups;
    const std::uint64_t hits0 = mgr.stats().cacheHits;
    mgr.resetPeakNodes();

    WallTimer fixpointTimer;
    try {
      if (lane == Lane::Bes) {
        out.rule = "direct";
        bes::BesOptions bopts;
        bopts.cancelCheck = copts.cancelCheck;
        bes::BesChecker checker(modules.at(localIndex).sys, bopts);
        const bes::BesResult r = checker.holds(spec);
        out.record.verdict = r.holds ? Verdict::Holds : Verdict::Fails;
        out.decided = true;
        if (!r.holds) out.counterexample = r.counterexample;
      } else if (!d.composed) {
        out.rule = "direct";
        symbolic::Checker checker(modules.at(localIndex).sys, copts);
        const bool holds = checker.holds(spec);
        out.record.verdict = holds ? Verdict::Holds : Verdict::Fails;
        out.decided = true;
        if (!holds) out.counterexample = extractCounterexample(checker, spec);
      } else {
        const comp::PropertyClass cls = comp::classify(spec);
        out.rule = ruleName(cls);
        comp::CompositionalVerifier verifier(ctx, copts);
        for (const smv::ElaboratedModule& mod : modules) {
          symbolic::SymbolicSystem sys = mod.sys;
          symbolic::addReflexive(sys);
          verifier.addComponent(std::move(sys));
        }
        comp::ProofTree proof;
        bool ok = verifier.verify(spec, proof, /*allowGlobalFallback=*/true);
        if (!ok && cls != comp::PropertyClass::Unknown) {
          // The rules not establishing the spec is not a refutation (a
          // failing component premise says nothing about the composition);
          // decide with a direct check and record it in the certificate.
          symbolic::Checker direct(verifier.composed(), copts);
          ok = direct.holds(spec);
          proof.add(comp::ProofNode::Kind::ModelCheck,
                    "composed system |= " + ctl::toString(spec.f) +
                        "  (direct fallback)",
                    ok);
          out.rule += " + global fallback";
        }
        out.record.verdict = ok ? Verdict::Holds : Verdict::Fails;
        out.decided = true;
        out.proofJson = proof.toJson();
        if (!ok) {
          symbolic::Checker direct(verifier.composed(), copts);
          out.counterexample = extractCounterexample(direct, spec);
        }
      }
    } catch (const symbolic::CancelledError& e) {
      out.record.verdict = cancelVerdict(e.reason());
    }
    out.record.fixpointMs = fixpointTimer.seconds() * 1000.0;
    out.record.seconds = timer.seconds();
    out.record.peakLiveNodes = mgr.stats().peakNodes;
    const std::uint64_t lookups = mgr.stats().cacheLookups - lookups0;
    out.record.cacheHitRate =
        lookups == 0
            ? 0.0
            : static_cast<double>(mgr.stats().cacheHits - hits0) /
                  static_cast<double>(lookups);
  } catch (const std::exception& e) {
    out.record.verdict = Verdict::Error;
    out.error = e.what();
    out.record.seconds = timer.seconds();
  }
  return out;
}

/// The replay identity of an obligation descriptor (see journalKey).
std::string replayKeyFor(const ObligationDesc& d) {
  JournalEntry probe;
  probe.fingerprint = d.fingerprint;
  probe.job = d.jobName;
  probe.id = d.id;
  probe.specText = d.specText;
  return journalKey(probe);
}

JournalEntry journalEntryFor(const ObligationDesc& d,
                             const ObligationOutcome& out) {
  JournalEntry e;
  e.fingerprint = d.fingerprint;
  e.job = d.jobName;
  e.id = d.id;
  e.target = d.target;
  e.spec = d.specName;
  e.specText = d.specText;
  e.verdict = out.verdict;
  e.rule = out.rule;
  e.engine = out.attempts.empty() ? "" : out.attempts.back().engine;
  e.seconds = out.seconds;
  e.error = out.error;
  e.counterexample = out.counterexample;
  e.proofJson = out.proofJson;
  return e;
}

/// Serve a previously journaled decision (--resume); zero attempts.
bool serveFromJournal(const ObligationDesc& d, const JournalReplay* replay,
                      ObligationOutcome& out, RunTrace& trace) {
  if (replay == nullptr) return false;
  const JournalEntry* hit = replay->find(replayKeyFor(d));
  if (hit == nullptr) return false;
  out.verdict = hit->verdict;
  out.verdictSource = "journal";
  out.rule = hit->rule;
  out.counterexample = hit->counterexample;
  out.proofJson = hit->proofJson;
  if (trace.enabled()) {
    trace.emit(JsonObject()
                   .put("event", "journal_hit")
                   .putDouble("t", trace.elapsedSeconds())
                   .put("job", d.jobName)
                   .put("obligation", d.id)
                   .put("verdict", toString(out.verdict))
                   .putDouble("original_seconds", hit->seconds));
  }
  return true;
}

/// Serve the obligation cache; zero attempts on a hit.
bool serveFromCache(const ObligationDesc& d, ObligationCache* cache,
                    ObligationOutcome& out, RunTrace& trace) {
  if (cache == nullptr || d.fingerprint.empty()) return false;
  WallTimer cacheTimer;
  const std::optional<CachedVerdict> hit = cache->lookup(d.fingerprint);
  if (!hit.has_value()) return false;
  out.verdict = hit->verdict;
  out.verdictSource = "cache";
  out.rule = hit->rule;
  out.counterexample = hit->counterexample;
  out.proofJson = hit->proofJson;
  out.seconds = cacheTimer.seconds();
  // Replayed verdicts stay attributable: the engine that decided the
  // cached entry (the race winner, for raced obligations) is the replay's
  // engine-choice record.
  if (!hit->engine.empty()) {
    out.engineChoiceJson = JsonObject()
                               .put("engine", hit->engine)
                               .put("reason", "cache replay of decided verdict")
                               .str();
  }
  if (trace.enabled()) {
    trace.emit(JsonObject()
                   .put("event", "cache_hit")
                   .putDouble("t", trace.elapsedSeconds())
                   .put("job", d.jobName)
                   .put("obligation", d.id)
                   .put("fingerprint", d.fingerprint)
                   .put("verdict", toString(out.verdict))
                   .putDouble("original_seconds", hit->seconds));
  }
  return true;
}

/// Record how EngineMode::Auto resolved for this obligation — once, in
/// both the trace (engine_choice event) and the report.
void recordEngineChoice(const ObligationDesc& d,
                        const symbolic::EngineChoice& c,
                        ObligationOutcome& out, RunTrace& trace) {
  if (!out.engineChoiceJson.empty()) return;
  out.engineChoiceJson = choiceJson(c);
  if (trace.enabled()) {
    trace.emit(JsonObject()
                   .put("event", "engine_choice")
                   .putDouble("t", trace.elapsedSeconds())
                   .put("job", d.jobName)
                   .put("obligation", d.id)
                   .put("engine", engineName(c.usePartitioned))
                   .putBool("probed", c.probed)
                   .putBool("probe_aborted", c.probeAborted)
                   .putUint("conjuncts",
                            static_cast<std::uint64_t>(c.conjuncts))
                   .putUint("partition_nodes", c.partitionNodes)
                   .putUint("monolithic_nodes", c.monolithicNodes)
                   .putUint("cap_nodes", c.capNodes)
                   .put("reason", c.reason));
  }
}

/// Fold one finished attempt into the outcome: record, accumulated
/// seconds, rule, metric observations, and the "attempt" trace event.
/// Shared by the sequential attempt loop and the race path (where the
/// winner is folded last so attempts.back() names the deciding engine).
void noteAttempt(const ObligationDesc& d, const AttemptOutput& a,
                 int attemptNo, ObligationOutcome& out, RunTrace& trace,
                 const ObligationInstruments* ins) {
  out.attempts.push_back(a.record);
  out.seconds += a.record.seconds;
  if (!a.rule.empty()) out.rule = a.rule;
  if (ins != nullptr) {
    if (a.record.elaborateMs > 0.0) {
      ins->elaborateSeconds.observe(a.record.elaborateMs / 1000.0);
    }
    if (a.record.importMs > 0.0) {
      ins->importSeconds.observe(a.record.importMs / 1000.0);
    }
    ins->fixpointSeconds.observe(a.record.fixpointMs / 1000.0);
  }
  if (trace.enabled()) {
    trace.emit(JsonObject()
                   .put("event", "attempt")
                   .putDouble("t", trace.elapsedSeconds())
                   .put("job", d.jobName)
                   .put("obligation", d.id)
                   .putUint("attempt", static_cast<std::uint64_t>(attemptNo))
                   .put("engine", a.record.engine)
                   .put("verdict", toString(a.record.verdict))
                   .putDouble("seconds", a.record.seconds)
                   .putDouble("elaborate_ms", a.record.elaborateMs)
                   .putDouble("import_ms", a.record.importMs)
                   .putDouble("fixpoint_ms", a.record.fixpointMs)
                   .putUint("peak_live_nodes", a.record.peakLiveNodes)
                   .putDouble("cache_hit_rate", a.record.cacheHitRate));
  }
}

/// When the requested Bes lane declined the obligation, record the
/// fallback once — in the trace and, when Auto/snapshot resolution has not
/// already claimed it, as the outcome's engine-choice record.
void recordBesFallback(const ObligationDesc& d, const AttemptOutput& a,
                       ObligationOutcome& out, RunTrace& trace) {
  if (a.besFallback.empty()) return;
  if (out.engineChoiceJson.empty()) {
    out.engineChoiceJson = JsonObject()
                               .put("engine", laneName(a.lane))
                               .put("reason", "bes declined: " + a.besFallback)
                               .str();
  }
  if (trace.enabled()) {
    trace.emit(JsonObject()
                   .put("event", "bes_fallback")
                   .putDouble("t", trace.elapsedSeconds())
                   .put("job", d.jobName)
                   .put("obligation", d.id)
                   .put("engine", laneName(a.lane))
                   .put("reason", a.besFallback));
  }
}

/// Memoize a decided verdict; budget verdicts and errors are never
/// inserted (they say nothing about ⊨_r and must be re-attempted).
void cacheDecided(const ObligationDesc& d, const AttemptOutput& a,
                  ObligationOutcome& out, ObligationCache* cache) {
  if (cache == nullptr || d.fingerprint.empty() ||
      !ObligationCache::cacheable(out.verdict)) {
    return;
  }
  CachedVerdict entry;
  entry.verdict = out.verdict;
  entry.rule = out.rule;
  entry.engine = a.record.engine;
  entry.seconds = a.record.seconds;
  entry.counterexample = out.counterexample;
  entry.proofJson = out.proofJson;
  if (cache->insert(d.fingerprint, entry)) out.cacheInserted = true;
}

/// Both race lanes for one obligation.  The BES lane runs on a spawned
/// thread, the symbolic lane inline on the worker; the first lane to reach
/// a *sound* verdict (Holds/Fails) CASes itself in as the winner and
/// raises the loser's race-cancel flag.  Budget verdicts and errors never
/// win — and never cancel the other lane, which may still decide.
struct RaceOutcome {
  AttemptOutput bes;
  AttemptOutput sym;
  int winner = -1;  ///< 0 = bes, 1 = symbolic, -1 = neither decided
};

RaceOutcome runRace(const ObligationDesc& d, std::optional<Lane> symLane,
                    bool useSnapshot, const CancelFlags& cancel) {
  RaceOutcome race;
  std::atomic<bool> cancelBes{false};
  std::atomic<bool> cancelSym{false};
  std::atomic<int> winner{-1};
  CancelFlags besFlags = cancel;
  besFlags.race = &cancelBes;
  CancelFlags symFlags = cancel;
  symFlags.race = &cancelSym;
  const auto finish = [&winner](int laneId, const AttemptOutput& a,
                                std::atomic<bool>& loserFlag) {
    if (!a.decided) return;
    int expected = -1;
    if (winner.compare_exchange_strong(expected, laneId,
                                       std::memory_order_acq_rel)) {
      loserFlag.store(true, std::memory_order_relaxed);
    }
  };
  std::thread besThread([&] {
    // Deterministic race tests wedge one lane here; the sites are plain
    // registry lookups, armed (or off) in every build.
    util::Failpoint::site("race.bes_delay").evaluate();
    race.bes = runAttempt(d, Lane::Bes, useSnapshot, besFlags);
    finish(0, race.bes, cancelSym);
  });
  try {
    util::Failpoint::site("race.symbolic_delay").evaluate();
    race.sym = runAttempt(d, symLane, useSnapshot, symFlags);
  } catch (...) {
    besThread.join();
    throw;
  }
  finish(1, race.sym, cancelBes);
  besThread.join();
  race.winner = winner.load(std::memory_order_acquire);
  return race;
}

/// --engine race for a non-composed obligation: both lanes run for the
/// same obligation under the job's budget; the first sound verdict wins,
/// the loser is cancelled (Verdict::Cancelled via the race flag — never
/// quarantined), and the winner is the outcome and the cache entry.
void runRaceAttempts(const ObligationDesc& d, ObligationOutcome& out,
                     RunTrace& trace, ObligationCache* cache,
                     const CancelFlags& cancel,
                     const ObligationInstruments* ins) {
  // Symbolic lane: the snapshot's probed choice when there is one,
  // otherwise the lane resolves worker-side inside the attempt.
  std::optional<Lane> symLane;
  if (d.snapshot != nullptr) {
    const symbolic::EngineChoice& c =
        d.snapshot->moduleChoice.at(d.moduleIndex);
    symLane = c.usePartitioned ? Lane::Partitioned : Lane::Monolithic;
  }
  bool quarantined = false;
  int attemptNo = 0;
  while (true) {
    const RaceOutcome race = runRace(d, symLane, !quarantined, cancel);
    if (race.winner >= 0) {
      const AttemptOutput& w = race.winner == 0 ? race.bes : race.sym;
      const AttemptOutput& l = race.winner == 0 ? race.sym : race.bes;
      noteAttempt(d, l, ++attemptNo, out, trace, ins);
      noteAttempt(d, w, ++attemptNo, out, trace, ins);
      out.verdict = w.record.verdict;
      out.counterexample = w.counterexample;
      out.proofJson = w.proofJson;
      out.engineChoiceJson =
          JsonObject()
              .put("engine", w.record.engine)
              .putBool("raced", true)
              .put("winner", w.record.engine)
              .put("loser", l.record.engine)
              .put("loser_verdict", toString(l.record.verdict))
              .put("reason", "race: first sound verdict wins")
              .str();
      if (trace.enabled()) {
        trace.emit(JsonObject()
                       .put("event", "race_decided")
                       .putDouble("t", trace.elapsedSeconds())
                       .put("job", d.jobName)
                       .put("obligation", d.id)
                       .put("winner", w.record.engine)
                       .put("loser", l.record.engine)
                       .put("loser_verdict", toString(l.record.verdict))
                       .putDouble("winner_seconds", w.record.seconds)
                       .putDouble("loser_seconds", l.record.seconds));
      }
      recordBesFallback(d, race.bes, out, trace);
      cacheDecided(d, w, out, cache);
      return;
    }
    noteAttempt(d, race.bes, ++attemptNo, out, trace, ins);
    noteAttempt(d, race.sym, ++attemptNo, out, trace, ins);
    recordBesFallback(d, race.bes, out, trace);
    // The race flag is only raised by a winner, so with no winner a
    // Cancelled lane was cancelled externally: the run is winding down.
    if (race.bes.record.verdict == Verdict::Cancelled ||
        race.sym.record.verdict == Verdict::Cancelled) {
      out.verdict = Verdict::Cancelled;
      return;
    }
    const bool besErr = race.bes.record.verdict == Verdict::Error;
    const bool symErr = race.sym.record.verdict == Verdict::Error;
    if (besErr && symErr) {
      // Both lanes threw: quarantine once — rerun the race rebuilt from
      // scratch (fresh Contexts, no snapshot import) — then give up.
      if (!quarantined) {
        quarantined = true;
        if (trace.enabled()) {
          trace.emit(JsonObject()
                         .put("event", "quarantine")
                         .putDouble("t", trace.elapsedSeconds())
                         .put("job", d.jobName)
                         .put("obligation", d.id)
                         .put("engine", "race")
                         .put("error", race.sym.error));
        }
        continue;
      }
      out.verdict = Verdict::Error;
      out.error = race.sym.error.empty() ? race.bes.error : race.sym.error;
      return;
    }
    if (besErr || symErr) {
      // One lane threw, the other ran out of budget: the budget verdict
      // is the honest summary (the error lane proved nothing either way).
      out.verdict = besErr ? race.sym.record.verdict
                           : race.bes.record.verdict;
      return;
    }
    // Both lanes exhausted their budget.
    out.verdict = Verdict::Inconclusive;
    return;
  }
}

/// The attempt loop: engine degradation on budget exhaustion, quarantine
/// on an unexpected exception (one retry rebuilt from scratch, then Error).
void runAttempts(const ObligationDesc& d, ObligationOutcome& out,
                 RunTrace& trace, ObligationCache* cache,
                 const CancelFlags& cancel,
                 const ObligationInstruments* ins) {
  const JobOptions& jopts = d.job->options;
  // First-attempt lane: fixed modes (including Bes) are forced outright;
  // Auto — and Race on the composed obligations the race path routes here —
  // resolves from the snapshot's probed choice when there is one, otherwise
  // the first attempt resolves it worker-side.
  std::optional<Lane> lane;
  if (jopts.engine == symbolic::EngineMode::Partitioned) {
    lane = Lane::Partitioned;
  } else if (jopts.engine == symbolic::EngineMode::Monolithic) {
    lane = Lane::Monolithic;
  } else if (jopts.engine == symbolic::EngineMode::Bes) {
    lane = Lane::Bes;
  } else if (d.snapshot != nullptr) {
    const symbolic::EngineChoice& c =
        d.composed ? d.snapshot->composedChoice
                   : d.snapshot->moduleChoice.at(d.moduleIndex);
    lane = c.usePartitioned ? Lane::Partitioned : Lane::Monolithic;
    recordEngineChoice(d, c, out, trace);
  }
  const int maxBudgetAttempts = jopts.retryOtherEngine ? 2 : 1;
  int budgetAttempts = 0;  ///< attempts that ended in a budget verdict
  bool quarantined = false;
  int attemptNo = 0;
  while (true) {
    ++attemptNo;
    // The quarantine retry deliberately bypasses the snapshot: a full
    // rebuild from the program text rules out a poisoned import just as
    // the fresh Context rules out a poisoned manager.
    const AttemptOutput a = runAttempt(d, lane, !quarantined, cancel);
    if (a.autoResolved) {
      lane = a.lane;
      recordEngineChoice(d, a.choice, out, trace);
    }
    recordBesFallback(d, a, out, trace);
    noteAttempt(d, a, attemptNo, out, trace, ins);
    if (a.record.verdict == Verdict::Error) {
      // Quarantine: one more try rebuilt from scratch (fresh Context, no
      // snapshot import, so a transient poisoning — a torn model file, an
      // injected fault, a bad allocation — gets a clean slate).
      if (!quarantined) {
        quarantined = true;
        if (trace.enabled()) {
          trace.emit(JsonObject()
                         .put("event", "quarantine")
                         .putDouble("t", trace.elapsedSeconds())
                         .put("job", d.jobName)
                         .put("obligation", d.id)
                         .put("engine", a.record.engine)
                         .put("error", a.error));
        }
        continue;
      }
      out.verdict = Verdict::Error;
      out.error = a.error;
      return;
    }
    if (a.record.verdict == Verdict::Cancelled) {
      // The run is winding down; no retry is meaningful.
      out.verdict = Verdict::Cancelled;
      return;
    }
    if (a.decided) {
      out.verdict = a.record.verdict;
      out.counterexample = a.counterexample;
      out.proofJson = a.proofJson;
      cacheDecided(d, a, out, cache);
      return;
    }
    // Budget exhausted: degrade to the other engine, once.
    ++budgetAttempts;
    if (budgetAttempts < maxBudgetAttempts) {
      CMC_FAILPOINT("scheduler.retry");
      out.retried = true;
      if (trace.enabled()) {
        trace.emit(JsonObject()
                       .put("event", "retry")
                       .putDouble("t", trace.elapsedSeconds())
                       .put("job", d.jobName)
                       .put("obligation", d.id)
                       .put("reason", toString(a.record.verdict))
                       .put("from_engine", laneName(a.lane))
                       .put("to_engine", laneName(otherLane(a.lane))));
      }
      lane = otherLane(a.lane);
      continue;
    }
    // Both engines exhausted their budget (or retry is disabled, in
    // which case the single attempt's Timeout/MemoryOut stands).
    out.verdict =
        budgetAttempts > 1 ? Verdict::Inconclusive : a.record.verdict;
    return;
  }
}

ObligationOutcome runObligation(const ObligationDesc& d, RunTrace& trace,
                                ThreadPool& pool, ObligationCache* cache,
                                RunJournal* journal,
                                const JournalReplay* replay,
                                const CancelFlags& cancel,
                                const ObligationInstruments* ins) {
  ObligationOutcome out;
  out.id = d.id;
  out.target = d.target;
  out.spec = d.specName;
  out.specText = d.specText;
  out.fingerprint = d.fingerprint;
  WallTimer dispatchTimer;
  if (ins != nullptr) ins->dispatched.inc();

  if (trace.enabled()) {
    trace.emit(JsonObject()
                   .put("event", "obligation_start")
                   .putDouble("t", trace.elapsedSeconds())
                   .put("job", d.jobName)
                   .put("obligation", d.id)
                   .put("target", d.target)
                   .put("spec", d.specName)
                   .put("engine", symbolic::toString(d.job->options.engine))
                   .putBool("snapshot", d.snapshot != nullptr)
                   .putUint("queue_depth", pool.pendingTasks()));
  }

  // The whole decision path is guarded: whatever a poisoned obligation
  // throws (including from the dispatch failpoint below), its siblings on
  // the pool are untouched and the batch completes.
  // Race applies per obligation and only where both lanes can actually
  // differ: a composed obligation's BES lane would immediately fall back
  // to partitioned, so Race routes composed work through the normal loop
  // (where it resolves like Auto from the snapshot's probed choice).
  const auto attempt = [&] {
    if (d.job->options.engine == symbolic::EngineMode::Race && !d.composed) {
      runRaceAttempts(d, out, trace, cache, cancel, ins);
    } else {
      runAttempts(d, out, trace, cache, cancel, ins);
    }
  };

  try {
    CMC_FAILPOINT("scheduler.dispatch");
    if (cancel.requested()) {
      // Drain mode: the run is being interrupted — report the queued
      // obligation as Cancelled without spending an attempt on it.
      out.verdict = Verdict::Cancelled;
    } else if (!serveFromJournal(d, replay, out, trace) &&
               !serveFromCache(d, cache, out, trace)) {
      attempt();
    } else if (out.verdict == Verdict::Fails &&
               out.counterexample.empty()) {
      // A replayed Fails stored no counterexample (trace search is
      // best-effort; older cache/journal entries may predate it).  The
      // replay is still the verdict — but a consumer that asked for traces
      // must not silently get none: say so explicitly, or re-check on
      // demand under --trace-force.
      if (d.job->options.traceForce) {
        if (trace.enabled()) {
          trace.emit(JsonObject()
                         .put("event", "trace_forced_recheck")
                         .putDouble("t", trace.elapsedSeconds())
                         .put("job", d.jobName)
                         .put("obligation", d.id)
                         .put("verdict_source", out.verdictSource));
        }
        ObligationOutcome fresh;
        fresh.id = d.id;
        fresh.target = d.target;
        fresh.spec = d.specName;
        fresh.specText = d.specText;
        fresh.fingerprint = d.fingerprint;
        out = std::move(fresh);
        attempt();
      } else if (trace.enabled()) {
        trace.emit(JsonObject()
                       .put("event", "trace_unavailable")
                       .putDouble("t", trace.elapsedSeconds())
                       .put("job", d.jobName)
                       .put("obligation", d.id)
                       .put("verdict_source", out.verdictSource)
                       .put("reason",
                            "replayed verdict stored no counterexample"));
      }
    }
  } catch (const std::exception& e) {
    out.verdict = Verdict::Error;
    out.error = e.what();
  } catch (...) {
    out.verdict = Verdict::Error;
    out.error = "unknown exception";
  }

  if (ins != nullptr) {
    ins->completed.inc();
    ins->sourceCounter(out.verdictSource).inc();
    ins->verdictCounter(out.verdict).inc();
    ins->obligationSeconds.observe(dispatchTimer.seconds());
  }

  // Journal the outcome the moment it is final (append + flush inside);
  // replayed outcomes are already in the journal being resumed.
  if (journal != nullptr && out.verdictSource != "journal") {
    journal->record(journalEntryFor(d, out));
  }

  std::uint64_t peak = 0;
  for (const AttemptRecord& a : out.attempts) {
    peak = std::max(peak, a.peakLiveNodes);
  }
  if (trace.enabled()) {
    trace.emit(JsonObject()
                   .put("event", "obligation_end")
                   .putDouble("t", trace.elapsedSeconds())
                   .put("job", d.jobName)
                   .put("obligation", d.id)
                   .put("verdict", toString(out.verdict))
                   .put("verdict_source", out.verdictSource)
                   .put("rule", out.rule)
                   .putBool("retried", out.retried)
                   .putUint("attempts",
                            static_cast<std::uint64_t>(out.attempts.size()))
                   .putDouble("seconds", out.seconds)
                   .putUint("peak_live_nodes", peak)
                   .putDouble("cache_hit_rate", out.attempts.empty()
                                                    ? 0.0
                                                    : out.attempts.back()
                                                          .cacheHitRate));
  }
  return out;
}

}  // namespace

JobReport VerificationService::run(const VerificationJob& job,
                                   RunTrace* trace, RunJournal* journal,
                                   const JournalReplay* replay,
                                   const std::atomic<bool>* cancel) {
  const std::vector<VerificationJob> one{job};
  return runBatch(one, trace, journal, replay, cancel).front();
}

std::shared_future<SnapshotResult> VerificationService::snapshotFor(
    const VerificationJob& job, bool wantCanon) {
  // Factory jobs are not memoizable (the builder must run per call — and
  // tests rely on its call count); their snapshot is also only used for
  // obligation enumeration, never shared with workers.
  if (!job.factory && snapshotCapacity_ > 0) {
    // The snapshot's content depends on the engine mode (Auto probes and
    // records choices), compose (composed probe), and whether canonical
    // serializations were requested — all of it goes into the key.
    const std::string key = std::string(symbolic::toString(job.options.engine))
                                .append(job.options.compose ? "|C|" : "|D|")
                                .append(wantCanon ? "F|" : "N|")
                                .append(job.smvText);
    std::lock_guard<std::mutex> lock(snapshotMutex_);
    auto it = snapshotCache_.find(key);
    if (it != snapshotCache_.end()) {
      // A memoized *failure* is not served: erase it so a resubmission
      // gets a fresh build (the failure may have been transient).
      const std::shared_future<SnapshotResult>& fut = it->second.future;
      const bool failed =
          fut.wait_for(std::chrono::seconds(0)) ==
              std::future_status::ready &&
          fut.get().snapshot == nullptr;
      if (!failed) {
        snapshotLru_.splice(snapshotLru_.begin(), snapshotLru_,
                            it->second.lruIt);
        if (metrics_ != nullptr) metrics_->counter("snapshot_reuses").inc();
        return fut;
      }
      snapshotLru_.erase(it->second.lruIt);
      snapshotCache_.erase(it);
    }
    if (metrics_ != nullptr) metrics_->counter("snapshot_builds").inc();
    std::shared_future<SnapshotResult> fut =
        pool_.submit([job, wantCanon] { return buildSnapshot(job, wantCanon); })
            .share();
    snapshotLru_.push_front(key);
    SnapshotSlot slot;
    slot.future = fut;
    slot.lruIt = snapshotLru_.begin();
    snapshotCache_.emplace(key, std::move(slot));
    while (snapshotCache_.size() > snapshotCapacity_) {
      snapshotCache_.erase(snapshotLru_.back());
      snapshotLru_.pop_back();
    }
    return fut;
  }
  if (metrics_ != nullptr) metrics_->counter("snapshot_builds").inc();
  return pool_
      .submit([job, wantCanon] { return buildSnapshot(job, wantCanon); })
      .share();
}

std::vector<JobReport> VerificationService::runBatch(
    const std::vector<VerificationJob>& jobs, RunTrace* trace,
    RunJournal* journal, const JournalReplay* replay,
    const std::atomic<bool>* cancel) {
  // No caller-provided trace → drop events instead of buffering them for
  // nobody; the per-event JSON serialization is measurable against small
  // obligations (the AFS batch bench runs tens of them per millisecond).
  RunTrace localTrace{RunTrace::Disabled{}};
  RunTrace& tr = trace != nullptr ? *trace : localTrace;
  const CancelFlags flags{cancel_, cancel};
  // Resolve every per-obligation instrument once for the whole batch.
  std::optional<ObligationInstruments> instruments;
  if (metrics_ != nullptr) instruments.emplace(*metrics_);
  const ObligationInstruments* ins =
      instruments.has_value() ? &*instruments : nullptr;
  const bool wantCanon =
      cache_ != nullptr || journal != nullptr || replay != nullptr;

  struct JobState {
    WallTimer timer;
    std::shared_future<SnapshotResult> snapFuture;
    std::shared_ptr<const ElaborationSnapshot> snapshot;
    std::string scoutError;
    std::vector<ObligationDesc> descs;
    std::vector<std::future<ObligationOutcome>> futures;
    /// Countdown latch: the caller sleeps on `done` once per job instead
    /// of once per obligation future.  Harvesting futures in submission
    /// order wakes the caller on every set_value — a fresh sleeper
    /// preempts the worker, so on few cores that is two context switches
    /// per obligation for no progress.
    std::shared_ptr<std::atomic<std::size_t>> remaining;
    std::shared_ptr<std::promise<void>> donePromise;
    std::future<void> done;
  };
  std::vector<JobState> states(jobs.size());

  // Scout phase, now parallel: every job's elaboration snapshot is a pool
  // task (or a memo hit from a previous batch — the server's warm path).
  for (std::size_t k = 0; k < jobs.size(); ++k) {
    states[k].snapFuture = snapshotFor(jobs[k], wantCanon);
  }

  // Enumerate and submit per job as its snapshot lands.  Obligations are
  // submitted the moment their job's snapshot resolves, so job k's workers
  // run while job k+1's snapshot is still elaborating — and because every
  // snapshot future is resolved *here*, on the caller's thread, pool
  // workers themselves never block on one (no pool-starvation deadlock).
  //
  // Jobs that share a snapshot and the verdict-relevant options (repeated
  // batch entries — the warm server path, the AFS bench) produce identical
  // obligation lists up to the owning job: enumerate once per
  // (snapshot, options) and copy, instead of re-rendering every spec and
  // re-hashing every fingerprint per job.
  std::map<std::pair<const void*, std::uint64_t>,
           std::vector<ObligationDesc>> descMemo;
  for (std::size_t k = 0; k < jobs.size(); ++k) {
    const VerificationJob& job = jobs[k];
    JobState& state = states[k];
    const SnapshotResult sr = state.snapFuture.get();
    if (sr.snapshot == nullptr) {
      state.scoutError = sr.error;
    } else {
      state.snapshot = sr.snapshot;
      const ElaborationSnapshot& snap = *sr.snapshot;
      // Workers share the snapshot's BDDs for text jobs only: a factory
      // job's builder is the model's source of truth and runs per attempt.
      const std::shared_ptr<const ElaborationSnapshot> shared =
          job.factory ? nullptr : state.snapshot;
      // Everything obligationFingerprint hashes beyond the snapshot
      // (engine is part of the snapshot memo key already).
      const std::uint64_t optBits =
          (static_cast<std::uint64_t>(job.options.clusterThreshold) << 2) |
          (static_cast<std::uint64_t>(job.options.compose) << 1) |
          static_cast<std::uint64_t>(job.options.reorderBeforeCheck);
      std::vector<ObligationDesc>& descs =
          descMemo[{static_cast<const void*>(&snap), optBits}];
      if (descs.empty()) {
        for (ObligationRef& ref : enumerateObligations(snap, job.options)) {
          ObligationDesc d;
          static_cast<ObligationRef&>(d) = std::move(ref);
          descs.push_back(std::move(d));
        }
      }
      state.descs = descs;
      // A single-obligation job (cluster shards run them for the
      // coordinator) filters AFTER enumeration: the full, deterministic
      // enumeration is what makes ids and fingerprints agree across the
      // fleet.  The memo keeps the unfiltered list — `only` prunes this
      // job's private copy.
      if (!job.only.empty()) {
        std::erase_if(state.descs, [&job](const ObligationDesc& d) {
          return d.id != job.only;
        });
        if (state.descs.empty()) {
          state.scoutError =
              "job '" + job.name + "' has no obligation '" + job.only + "'";
        }
      }
      for (ObligationDesc& d : state.descs) {
        d.job = &job;
        d.jobName = job.name;
        d.snapshot = shared;
      }
      if (tr.enabled()) {
        tr.emit(JsonObject()
                    .put("event", "snapshot")
                    .putDouble("t", tr.elapsedSeconds())
                    .put("job", job.name)
                    .putBool("shared", shared != nullptr)
                    .putDouble("elaborate_ms", snap.elaborateSeconds * 1000.0)
                    .putUint("live_nodes", snap.liveNodes)
                    .putUint("modules",
                             static_cast<std::uint64_t>(snap.modules.size())));
      }
    }
    if (tr.enabled()) {
      tr.emit(JsonObject()
                  .put("event", "job_start")
                  .putDouble("t", tr.elapsedSeconds())
                  .put("job", job.name)
                  .put("cmc_version", util::versionString())
                  .put("source", job.sourcePath)
                  .putUint("obligations",
                           static_cast<std::uint64_t>(state.descs.size()))
                  .putUint("workers", threads()));
    }
    if (!state.descs.empty()) {
      state.remaining =
          std::make_shared<std::atomic<std::size_t>>(state.descs.size());
      state.donePromise = std::make_shared<std::promise<void>>();
      state.done = state.donePromise->get_future();
    }
    for (const ObligationDesc& d : state.descs) {
      auto remaining = state.remaining;
      auto donePromise = state.donePromise;
      state.futures.push_back(pool_.submit([d, &tr, journal, replay, flags,
                                            remaining, donePromise, ins,
                                            this] {
        // Last line of defence: runObligation already guards its decision
        // path, but nothing that reaches the pool may ever rethrow through
        // future.get() — one poisoned obligation must not lose its
        // siblings' outcomes.
        ObligationOutcome out;
        try {
          out = runObligation(d, tr, pool_, cache_.get(), journal, replay,
                              flags, ins);
        } catch (const std::exception& e) {
          out.id = d.id;
          out.target = d.target;
          out.spec = d.specName;
          out.specText = d.specText;
          out.fingerprint = d.fingerprint;
          out.verdict = Verdict::Error;
          out.error = e.what();
        }
        if (remaining->fetch_sub(1, std::memory_order_acq_rel) == 1) {
          donePromise->set_value();
        }
        return out;
      }));
    }
  }

  std::vector<JobReport> reports;
  reports.reserve(jobs.size());
  for (std::size_t k = 0; k < jobs.size(); ++k) {
    const VerificationJob& job = jobs[k];
    JobState& state = states[k];
    JobReport report;
    report.job = job.name;
    report.source = job.sourcePath;
    report.options = job.options;
    if (!state.scoutError.empty()) {
      ObligationOutcome bad;
      bad.id = job.name + "/<elaboration>";
      bad.target = job.name;
      bad.verdict = Verdict::Error;
      bad.error = state.scoutError;
      report.obligations.push_back(std::move(bad));
      report.verdict = Verdict::Error;
    }
    // One sleep per job: after the latch fires every future below is
    // settled (the last one may still be mid-set_value; its get() then
    // blocks only for that sliver).
    if (state.done.valid()) state.done.wait();
    for (std::future<ObligationOutcome>& f : state.futures) {
      report.obligations.push_back(f.get());
      const ObligationOutcome& o = report.obligations.back();
      report.verdict = worseVerdict(report.verdict, o.verdict);
      if (o.verdictSource == "journal") ++report.journalHits;
      if (!o.fingerprint.empty() && o.verdictSource != "journal") {
        if (o.verdictSource == "cache") ++report.cacheHits;
        else ++report.cacheMisses;
        if (o.cacheInserted) ++report.cacheInserts;
      }
    }
    report.wallSeconds = state.timer.seconds();
    if (tr.enabled()) {
      tr.emit(JsonObject()
                  .put("event", "job_end")
                  .putDouble("t", tr.elapsedSeconds())
                  .put("job", job.name)
                  .put("verdict", toString(report.verdict))
                  .putDouble("wall_seconds", report.wallSeconds)
                  .putUint("obligations",
                           static_cast<std::uint64_t>(
                               report.obligations.size()))
                  .putUint("cache_hits", report.cacheHits)
                  .putUint("cache_misses", report.cacheMisses)
                  .putUint("cache_inserts", report.cacheInserts)
                  .putUint("journal_hits", report.journalHits));
    }
    reports.push_back(std::move(report));
  }
  if (cache_ != nullptr) {
    // Service-lifetime cache counters (all batches so far), for operators
    // tailing the trace.
    const ObligationCacheStats cs = cache_->stats();
    if (tr.enabled()) {
      tr.emit(JsonObject()
                  .put("event", "cache_stats")
                  .putDouble("t", tr.elapsedSeconds())
                  .putUint("hits", cs.hits)
                  .putUint("misses", cs.misses)
                  .putUint("inserts", cs.inserts)
                  .putUint("evictions", cs.evictions)
                  .putUint("loaded", cs.loaded)
                  .putUint("corrupt_lines", cs.corruptLines)
                  .putUint("entries", cache_->size()));
    }
  }
  return reports;
}

}  // namespace cmc::service
