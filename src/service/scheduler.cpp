#include "service/scheduler.hpp"

#include <algorithm>
#include <future>
#include <utility>

#include "comp/classify.hpp"
#include "comp/verifier.hpp"
#include "service/budget.hpp"
#include "smv/fingerprint.hpp"
#include "symbolic/composition.hpp"
#include "util/failpoint.hpp"
#include "util/timer.hpp"
#include "util/version.hpp"

namespace cmc::service {

namespace {

/// The two cooperative cancellation sources an obligation polls: the
/// service-wide flag (SIGINT/SIGTERM wind-down of the whole embedder) and
/// the per-batch flag (one server request's CANCEL).  Either one aborts.
struct CancelFlags {
  const std::atomic<bool>* service = nullptr;
  const std::atomic<bool>* batch = nullptr;

  bool requested() const noexcept {
    return (service != nullptr &&
            service->load(std::memory_order_relaxed)) ||
           (batch != nullptr && batch->load(std::memory_order_relaxed));
  }
};

/// Per-verdict counter name in the metrics registry.
const char* verdictMetric(Verdict v) noexcept {
  switch (v) {
    case Verdict::Holds: return "verdict_holds";
    case Verdict::Fails: return "verdict_fails";
    case Verdict::Timeout: return "verdict_timeout";
    case Verdict::MemoryOut: return "verdict_memoryout";
    case Verdict::Inconclusive: return "verdict_inconclusive";
    case Verdict::Cancelled: return "verdict_cancelled";
    case Verdict::Error: return "verdict_error";
  }
  return "verdict_unknown";
}

/// Everything a worker needs to run one obligation; descriptors are copied
/// into the pool task, so only the job pointer must outlive the batch.
struct ObligationDesc {
  const VerificationJob* job = nullptr;
  std::string jobName;
  bool composed = false;
  std::size_t moduleIndex = 0;  ///< target module; spec owner when composed
  std::size_t specIndex = 0;
  std::string id;
  std::string target;
  std::string specName;
  std::string specText;
  /// Obligation-cache address; empty when the cache is disabled or the
  /// scout could not fingerprint the job.
  std::string fingerprint;
};

std::vector<smv::ElaboratedModule> materialize(const VerificationJob& job,
                                               symbolic::Context& ctx) {
  std::vector<smv::ElaboratedModule> modules =
      job.factory ? job.factory(ctx) : smv::elaborateProgram(ctx, job.smvText);
  if (modules.empty()) {
    throw ModelError("job '" + job.name + "' has no modules");
  }
  return modules;
}

const char* engineName(bool partitioned) {
  return partitioned ? "partitioned" : "monolithic";
}

Verdict cancelVerdict(symbolic::CancelReason reason) {
  switch (reason) {
    case symbolic::CancelReason::Deadline: return Verdict::Timeout;
    case symbolic::CancelReason::NodeBudget: return Verdict::MemoryOut;
    case symbolic::CancelReason::External: return Verdict::Cancelled;
  }
  return Verdict::Cancelled;
}

std::string ruleName(comp::PropertyClass cls) {
  switch (cls) {
    case comp::PropertyClass::Universal: return "universal (Rule 2)";
    case comp::PropertyClass::Existential: return "existential (Rules 1/3)";
    default: return "global fallback";
  }
}

/// Best-effort counterexample for a failing spec; the verdict is already
/// decided, so a budget expiry during trace search just drops the trace.
std::string extractCounterexample(symbolic::Checker& checker,
                                  const ctl::Spec& spec) {
  try {
    if (const auto trace = checker.counterexampleTrace(spec.r, spec.f)) {
      return *trace;
    }
    if (const auto witness = checker.violationWitness(spec.r, spec.f)) {
      return "violating state: " + *witness;
    }
  } catch (const symbolic::CancelledError&) {
  }
  return "";
}

struct AttemptOutput {
  AttemptRecord record;
  bool decided = false;  ///< verdict is Holds/Fails (not budget/error)
  std::string rule;
  std::string counterexample;
  std::string proofJson;
  std::string error;
};

/// One engine attempt: fresh context, fresh budget, full rebuild.
AttemptOutput runAttempt(const ObligationDesc& d, bool partitioned,
                         const CancelFlags& cancel) {
  AttemptOutput out;
  out.record.engine = engineName(partitioned);
  const JobOptions& jopts = d.job->options;
  WallTimer timer;
  try {
    symbolic::Context ctx(1 << 14);
    bdd::Manager& mgr = ctx.mgr();
    const std::vector<smv::ElaboratedModule> modules =
        materialize(*d.job, ctx);
    if (jopts.reorderBeforeCheck) mgr.reorderSift();

    BudgetToken token(mgr, jopts.limits);
    symbolic::CheckerOptions copts;
    copts.usePartitionedTrans = partitioned;
    copts.clusterThreshold = jopts.clusterThreshold;
    copts.cancelCheck = [&token, &cancel] {
      if (cancel.requested()) {
        throw symbolic::CancelledError(symbolic::CancelReason::External,
                                       "run interrupted");
      }
      token.check();
    };

    const std::uint64_t lookups0 = mgr.stats().cacheLookups;
    const std::uint64_t hits0 = mgr.stats().cacheHits;
    mgr.resetPeakNodes();

    try {
      const ctl::Spec& spec = modules.at(d.moduleIndex).specs.at(d.specIndex);
      if (!d.composed) {
        out.rule = "direct";
        symbolic::Checker checker(modules.at(d.moduleIndex).sys, copts);
        const bool holds = checker.holds(spec);
        out.record.verdict = holds ? Verdict::Holds : Verdict::Fails;
        out.decided = true;
        if (!holds) out.counterexample = extractCounterexample(checker, spec);
      } else {
        const comp::PropertyClass cls = comp::classify(spec);
        out.rule = ruleName(cls);
        comp::CompositionalVerifier verifier(ctx, copts);
        for (const smv::ElaboratedModule& mod : modules) {
          symbolic::SymbolicSystem sys = mod.sys;
          symbolic::addReflexive(sys);
          verifier.addComponent(std::move(sys));
        }
        comp::ProofTree proof;
        bool ok = verifier.verify(spec, proof, /*allowGlobalFallback=*/true);
        if (!ok && cls != comp::PropertyClass::Unknown) {
          // The rules not establishing the spec is not a refutation (a
          // failing component premise says nothing about the composition);
          // decide with a direct check and record it in the certificate.
          symbolic::Checker direct(verifier.composed(), copts);
          ok = direct.holds(spec);
          proof.add(comp::ProofNode::Kind::ModelCheck,
                    "composed system |= " + ctl::toString(spec.f) +
                        "  (direct fallback)",
                    ok);
          out.rule += " + global fallback";
        }
        out.record.verdict = ok ? Verdict::Holds : Verdict::Fails;
        out.decided = true;
        out.proofJson = proof.toJson();
        if (!ok) {
          symbolic::Checker direct(verifier.composed(), copts);
          out.counterexample = extractCounterexample(direct, spec);
        }
      }
    } catch (const symbolic::CancelledError& e) {
      out.record.verdict = cancelVerdict(e.reason());
    }
    out.record.seconds = timer.seconds();
    out.record.peakLiveNodes = mgr.stats().peakNodes;
    const std::uint64_t lookups = mgr.stats().cacheLookups - lookups0;
    out.record.cacheHitRate =
        lookups == 0
            ? 0.0
            : static_cast<double>(mgr.stats().cacheHits - hits0) /
                  static_cast<double>(lookups);
  } catch (const std::exception& e) {
    out.record.verdict = Verdict::Error;
    out.error = e.what();
    out.record.seconds = timer.seconds();
  }
  return out;
}

/// The replay identity of an obligation descriptor (see journalKey).
std::string replayKeyFor(const ObligationDesc& d) {
  JournalEntry probe;
  probe.fingerprint = d.fingerprint;
  probe.job = d.jobName;
  probe.id = d.id;
  probe.specText = d.specText;
  return journalKey(probe);
}

JournalEntry journalEntryFor(const ObligationDesc& d,
                             const ObligationOutcome& out) {
  JournalEntry e;
  e.fingerprint = d.fingerprint;
  e.job = d.jobName;
  e.id = d.id;
  e.target = d.target;
  e.spec = d.specName;
  e.specText = d.specText;
  e.verdict = out.verdict;
  e.rule = out.rule;
  e.engine = out.attempts.empty() ? "" : out.attempts.back().engine;
  e.seconds = out.seconds;
  e.error = out.error;
  e.counterexample = out.counterexample;
  e.proofJson = out.proofJson;
  return e;
}

/// Serve a previously journaled decision (--resume); zero attempts.
bool serveFromJournal(const ObligationDesc& d, const JournalReplay* replay,
                      ObligationOutcome& out, RunTrace& trace) {
  if (replay == nullptr) return false;
  const JournalEntry* hit = replay->find(replayKeyFor(d));
  if (hit == nullptr) return false;
  out.verdict = hit->verdict;
  out.verdictSource = "journal";
  out.rule = hit->rule;
  out.counterexample = hit->counterexample;
  out.proofJson = hit->proofJson;
  trace.emit(JsonObject()
                 .put("event", "journal_hit")
                 .putDouble("t", trace.elapsedSeconds())
                 .put("job", d.jobName)
                 .put("obligation", d.id)
                 .put("verdict", toString(out.verdict))
                 .putDouble("original_seconds", hit->seconds));
  return true;
}

/// Serve the obligation cache; zero attempts on a hit.
bool serveFromCache(const ObligationDesc& d, ObligationCache* cache,
                    ObligationOutcome& out, RunTrace& trace) {
  if (cache == nullptr || d.fingerprint.empty()) return false;
  WallTimer cacheTimer;
  const std::optional<CachedVerdict> hit = cache->lookup(d.fingerprint);
  if (!hit.has_value()) return false;
  out.verdict = hit->verdict;
  out.verdictSource = "cache";
  out.rule = hit->rule;
  out.counterexample = hit->counterexample;
  out.proofJson = hit->proofJson;
  out.seconds = cacheTimer.seconds();
  trace.emit(JsonObject()
                 .put("event", "cache_hit")
                 .putDouble("t", trace.elapsedSeconds())
                 .put("job", d.jobName)
                 .put("obligation", d.id)
                 .put("fingerprint", d.fingerprint)
                 .put("verdict", toString(out.verdict))
                 .putDouble("original_seconds", hit->seconds));
  return true;
}

/// The attempt loop: engine degradation on budget exhaustion, quarantine
/// on an unexpected exception (one retry on a fresh Context, then Error).
void runAttempts(const ObligationDesc& d, ObligationOutcome& out,
                 RunTrace& trace, ObligationCache* cache,
                 const CancelFlags& cancel) {
  const JobOptions& jopts = d.job->options;
  bool partitioned = jopts.usePartitionedTrans;
  const int maxBudgetAttempts = jopts.retryOtherEngine ? 2 : 1;
  int budgetAttempts = 0;  ///< attempts that ended in a budget verdict
  bool quarantined = false;
  int attemptNo = 0;
  while (true) {
    ++attemptNo;
    const AttemptOutput a = runAttempt(d, partitioned, cancel);
    out.attempts.push_back(a.record);
    out.seconds += a.record.seconds;
    if (!a.rule.empty()) out.rule = a.rule;
    trace.emit(JsonObject()
                   .put("event", "attempt")
                   .putDouble("t", trace.elapsedSeconds())
                   .put("job", d.jobName)
                   .put("obligation", d.id)
                   .putUint("attempt", static_cast<std::uint64_t>(attemptNo))
                   .put("engine", a.record.engine)
                   .put("verdict", toString(a.record.verdict))
                   .putDouble("seconds", a.record.seconds)
                   .putUint("peak_live_nodes", a.record.peakLiveNodes)
                   .putDouble("cache_hit_rate", a.record.cacheHitRate));
    if (a.record.verdict == Verdict::Error) {
      // Quarantine: one more try on a fresh Context (runAttempt always
      // rebuilds from scratch, so a transient poisoning — a torn model
      // file, an injected fault, a bad allocation — gets a clean slate).
      if (!quarantined) {
        quarantined = true;
        trace.emit(JsonObject()
                       .put("event", "quarantine")
                       .putDouble("t", trace.elapsedSeconds())
                       .put("job", d.jobName)
                       .put("obligation", d.id)
                       .put("engine", a.record.engine)
                       .put("error", a.error));
        continue;
      }
      out.verdict = Verdict::Error;
      out.error = a.error;
      return;
    }
    if (a.record.verdict == Verdict::Cancelled) {
      // The run is winding down; no retry is meaningful.
      out.verdict = Verdict::Cancelled;
      return;
    }
    if (a.decided) {
      out.verdict = a.record.verdict;
      out.counterexample = a.counterexample;
      out.proofJson = a.proofJson;
      // Memoize the decided verdict.  Budget verdicts and errors are never
      // inserted: they say nothing about ⊨_r and must be re-attempted.
      if (cache != nullptr && !d.fingerprint.empty() &&
          ObligationCache::cacheable(out.verdict)) {
        CachedVerdict entry;
        entry.verdict = out.verdict;
        entry.rule = out.rule;
        entry.engine = a.record.engine;
        entry.seconds = a.record.seconds;
        entry.counterexample = out.counterexample;
        entry.proofJson = out.proofJson;
        if (cache->insert(d.fingerprint, entry)) out.cacheInserted = true;
      }
      return;
    }
    // Budget exhausted: degrade to the other engine, once.
    ++budgetAttempts;
    if (budgetAttempts < maxBudgetAttempts) {
      CMC_FAILPOINT("scheduler.retry");
      out.retried = true;
      trace.emit(JsonObject()
                     .put("event", "retry")
                     .putDouble("t", trace.elapsedSeconds())
                     .put("job", d.jobName)
                     .put("obligation", d.id)
                     .put("reason", toString(a.record.verdict))
                     .put("from_engine", engineName(partitioned))
                     .put("to_engine", engineName(!partitioned)));
      partitioned = !partitioned;
      continue;
    }
    // Both engines exhausted their budget (or retry is disabled, in
    // which case the single attempt's Timeout/MemoryOut stands).
    out.verdict =
        budgetAttempts > 1 ? Verdict::Inconclusive : a.record.verdict;
    return;
  }
}

ObligationOutcome runObligation(const ObligationDesc& d, RunTrace& trace,
                                ThreadPool& pool, ObligationCache* cache,
                                RunJournal* journal,
                                const JournalReplay* replay,
                                const CancelFlags& cancel,
                                MetricsRegistry* metrics) {
  ObligationOutcome out;
  out.id = d.id;
  out.target = d.target;
  out.spec = d.specName;
  out.specText = d.specText;
  out.fingerprint = d.fingerprint;
  WallTimer dispatchTimer;
  if (metrics != nullptr) metrics->counter("obligations_dispatched").inc();

  trace.emit(JsonObject()
                 .put("event", "obligation_start")
                 .putDouble("t", trace.elapsedSeconds())
                 .put("job", d.jobName)
                 .put("obligation", d.id)
                 .put("target", d.target)
                 .put("spec", d.specName)
                 .put("engine", engineName(d.job->options.usePartitionedTrans))
                 .putUint("queue_depth", pool.pendingTasks()));

  // The whole decision path is guarded: whatever a poisoned obligation
  // throws (including from the dispatch failpoint below), its siblings on
  // the pool are untouched and the batch completes.
  try {
    CMC_FAILPOINT("scheduler.dispatch");
    if (cancel.requested()) {
      // Drain mode: the run is being interrupted — report the queued
      // obligation as Cancelled without spending an attempt on it.
      out.verdict = Verdict::Cancelled;
    } else if (!serveFromJournal(d, replay, out, trace) &&
               !serveFromCache(d, cache, out, trace)) {
      runAttempts(d, out, trace, cache, cancel);
    }
  } catch (const std::exception& e) {
    out.verdict = Verdict::Error;
    out.error = e.what();
  } catch (...) {
    out.verdict = Verdict::Error;
    out.error = "unknown exception";
  }

  if (metrics != nullptr) {
    metrics->counter("obligations_completed").inc();
    metrics->counter("obligations_" + out.verdictSource).inc();
    metrics->counter(verdictMetric(out.verdict)).inc();
    metrics->histogram("obligation_seconds").observe(dispatchTimer.seconds());
  }

  // Journal the outcome the moment it is final (append + flush inside);
  // replayed outcomes are already in the journal being resumed.
  if (journal != nullptr && out.verdictSource != "journal") {
    journal->record(journalEntryFor(d, out));
  }

  std::uint64_t peak = 0;
  for (const AttemptRecord& a : out.attempts) {
    peak = std::max(peak, a.peakLiveNodes);
  }
  trace.emit(JsonObject()
                 .put("event", "obligation_end")
                 .putDouble("t", trace.elapsedSeconds())
                 .put("job", d.jobName)
                 .put("obligation", d.id)
                 .put("verdict", toString(out.verdict))
                 .put("verdict_source", out.verdictSource)
                 .put("rule", out.rule)
                 .putBool("retried", out.retried)
                 .putUint("attempts",
                          static_cast<std::uint64_t>(out.attempts.size()))
                 .putDouble("seconds", out.seconds)
                 .putUint("peak_live_nodes", peak)
                 .putDouble("cache_hit_rate", out.attempts.empty()
                                                  ? 0.0
                                                  : out.attempts.back()
                                                        .cacheHitRate));
  return out;
}

}  // namespace

JobReport VerificationService::run(const VerificationJob& job,
                                   RunTrace* trace, RunJournal* journal,
                                   const JournalReplay* replay,
                                   const std::atomic<bool>* cancel) {
  const std::vector<VerificationJob> one{job};
  return runBatch(one, trace, journal, replay, cancel).front();
}

std::vector<JobReport> VerificationService::runBatch(
    const std::vector<VerificationJob>& jobs, RunTrace* trace,
    RunJournal* journal, const JournalReplay* replay,
    const std::atomic<bool>* cancel) {
  RunTrace localTrace;
  RunTrace& tr = trace != nullptr ? *trace : localTrace;
  const CancelFlags flags{cancel_, cancel};

  struct JobState {
    WallTimer timer;
    std::vector<ObligationDesc> descs;
    std::vector<std::future<ObligationOutcome>> futures;
    std::string scoutError;
  };
  std::vector<JobState> states(jobs.size());

  // Scout phase (caller thread): enumerate each job's obligations by
  // elaborating once into a scratch context.  Workers re-elaborate in
  // their own contexts; the scratch context only provides names.
  for (std::size_t k = 0; k < jobs.size(); ++k) {
    const VerificationJob& job = jobs[k];
    JobState& state = states[k];
    try {
      symbolic::Context scratch(1 << 14);
      const std::vector<smv::ElaboratedModule> modules =
          materialize(job, scratch);
      // Canonical serializations for the obligation cache (and the
      // journal's content-addressed replay key), one per module.
      // Fingerprinting is best-effort: a failure leaves the job uncached —
      // replay then falls back to the identity key (job/id/spec text).
      std::vector<std::string> canon;
      if (cache_ != nullptr || journal != nullptr || replay != nullptr) {
        try {
          canon.reserve(modules.size());
          for (const smv::ElaboratedModule& mod : modules) {
            canon.push_back(smv::canonicalModule(scratch, mod));
          }
        } catch (const std::exception&) {
          canon.clear();
        }
      }
      const auto fingerprintFor = [&](std::size_t i, std::size_t j,
                                      bool composed) -> std::string {
        if (canon.empty()) return "";
        return obligationFingerprint(canon, i, composed,
                                     modules[i].specs[j], job.options);
      };
      for (std::size_t i = 0; i < modules.size(); ++i) {
        for (std::size_t j = 0; j < modules[i].specs.size(); ++j) {
          ObligationDesc d;
          d.job = &job;
          d.jobName = job.name;
          d.moduleIndex = i;
          d.specIndex = j;
          d.target = modules[i].sys.name;
          d.specName = modules[i].specs[j].name;
          d.specText = ctl::toString(modules[i].specs[j].f);
          d.id = d.target + "/" + d.specName;
          d.fingerprint = fingerprintFor(i, j, /*composed=*/false);
          state.descs.push_back(std::move(d));
        }
      }
      if (job.options.compose && modules.size() > 1) {
        for (std::size_t i = 0; i < modules.size(); ++i) {
          for (std::size_t j = 0; j < modules[i].specs.size(); ++j) {
            ObligationDesc d;
            d.job = &job;
            d.jobName = job.name;
            d.composed = true;
            d.moduleIndex = i;
            d.specIndex = j;
            d.target = "composed";
            d.specName = modules[i].specs[j].name;
            d.specText = ctl::toString(modules[i].specs[j].f);
            d.id = d.target + "/" + d.specName;
            d.fingerprint = fingerprintFor(i, j, /*composed=*/true);
            state.descs.push_back(std::move(d));
          }
        }
      }
    } catch (const std::exception& e) {
      state.scoutError = e.what();
    }
    tr.emit(JsonObject()
                .put("event", "job_start")
                .putDouble("t", tr.elapsedSeconds())
                .put("job", job.name)
                .put("cmc_version", util::versionString())
                .put("source", job.sourcePath)
                .putUint("obligations",
                         static_cast<std::uint64_t>(state.descs.size()))
                .putUint("workers", threads()));
  }

  // Submit everything up front so obligations of different jobs interleave
  // on the pool.
  for (JobState& state : states) {
    for (const ObligationDesc& d : state.descs) {
      state.futures.push_back(pool_.submit([d, &tr, journal, replay, flags,
                                            this] {
        // Last line of defence: runObligation already guards its decision
        // path, but nothing that reaches the pool may ever rethrow through
        // future.get() — one poisoned obligation must not lose its
        // siblings' outcomes.
        try {
          return runObligation(d, tr, pool_, cache_.get(), journal, replay,
                               flags, metrics_);
        } catch (const std::exception& e) {
          ObligationOutcome out;
          out.id = d.id;
          out.target = d.target;
          out.spec = d.specName;
          out.specText = d.specText;
          out.fingerprint = d.fingerprint;
          out.verdict = Verdict::Error;
          out.error = e.what();
          return out;
        }
      }));
    }
  }

  std::vector<JobReport> reports;
  reports.reserve(jobs.size());
  for (std::size_t k = 0; k < jobs.size(); ++k) {
    const VerificationJob& job = jobs[k];
    JobState& state = states[k];
    JobReport report;
    report.job = job.name;
    report.source = job.sourcePath;
    report.options = job.options;
    if (!state.scoutError.empty()) {
      ObligationOutcome bad;
      bad.id = job.name + "/<elaboration>";
      bad.target = job.name;
      bad.verdict = Verdict::Error;
      bad.error = state.scoutError;
      report.obligations.push_back(std::move(bad));
      report.verdict = Verdict::Error;
    }
    for (std::future<ObligationOutcome>& f : state.futures) {
      report.obligations.push_back(f.get());
      const ObligationOutcome& o = report.obligations.back();
      report.verdict = worseVerdict(report.verdict, o.verdict);
      if (o.verdictSource == "journal") ++report.journalHits;
      if (!o.fingerprint.empty() && o.verdictSource != "journal") {
        if (o.verdictSource == "cache") ++report.cacheHits;
        else ++report.cacheMisses;
        if (o.cacheInserted) ++report.cacheInserts;
      }
    }
    report.wallSeconds = state.timer.seconds();
    tr.emit(JsonObject()
                .put("event", "job_end")
                .putDouble("t", tr.elapsedSeconds())
                .put("job", job.name)
                .put("verdict", toString(report.verdict))
                .putDouble("wall_seconds", report.wallSeconds)
                .putUint("obligations",
                         static_cast<std::uint64_t>(
                             report.obligations.size()))
                .putUint("cache_hits", report.cacheHits)
                .putUint("cache_misses", report.cacheMisses)
                .putUint("cache_inserts", report.cacheInserts)
                .putUint("journal_hits", report.journalHits));
    reports.push_back(std::move(report));
  }
  if (cache_ != nullptr) {
    // Service-lifetime cache counters (all batches so far), for operators
    // tailing the trace.
    const ObligationCacheStats cs = cache_->stats();
    tr.emit(JsonObject()
                .put("event", "cache_stats")
                .putDouble("t", tr.elapsedSeconds())
                .putUint("hits", cs.hits)
                .putUint("misses", cs.misses)
                .putUint("inserts", cs.inserts)
                .putUint("evictions", cs.evictions)
                .putUint("loaded", cs.loaded)
                .putUint("corrupt_lines", cs.corruptLines)
                .putUint("entries", cache_->size()));
  }
  return reports;
}

}  // namespace cmc::service
