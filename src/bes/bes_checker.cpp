#include "bes/bes_checker.hpp"

#include <algorithm>
#include <utility>

#include "symbolic/prop.hpp"
#include "util/common.hpp"

namespace cmc::bes {

using ctl::FormulaPtr;
using ctl::Op;

namespace {

/// True iff every fairness formula is the literal `true` (or the list is
/// empty) — the case where fair-EG degenerates to plain EG and the whole
/// obligation is alternation-free.
bool trivialFairness(const std::vector<FormulaPtr>& fairness) {
  for (const FormulaPtr& f : fairness) {
    if (f == nullptr || f->op() != Op::True) return false;
  }
  return true;
}

/// Validate one atom text against the system: the variable must be in the
/// system's alphabet and the value (if any) declared.
bool atomOk(const symbolic::SymbolicSystem& sys, const std::string& text,
            std::string* whyNot) {
  const symbolic::Context& ctx = *sys.ctx;
  const std::size_t eq = text.find('=');
  const std::string name = eq == std::string::npos ? text : text.substr(0, eq);
  if (!ctx.hasVar(name)) {
    if (whyNot) *whyNot = "atom '" + text + "' names an unknown variable";
    return false;
  }
  const symbolic::VarId id = ctx.varId(name);
  if (!std::binary_search(sys.vars.begin(), sys.vars.end(), id)) {
    if (whyNot) {
      *whyNot = "atom '" + text + "' is outside the system's alphabet";
    }
    return false;
  }
  if (eq == std::string::npos) {
    if (!ctx.variable(id).isBool) {
      if (whyNot) *whyNot = "atom '" + text + "' needs an =value";
      return false;
    }
  } else if (!ctx.variable(id).hasValue(text.substr(eq + 1))) {
    if (whyNot) *whyNot = "atom '" + text + "' names an undeclared value";
    return false;
  }
  return true;
}

bool atomsOk(const symbolic::SymbolicSystem& sys, const FormulaPtr& f,
             std::string* whyNot) {
  if (f == nullptr) return true;
  for (const std::string& a : ctl::collectAtoms(f)) {
    if (!atomOk(sys, a, whyNot)) return false;
  }
  return true;
}

}  // namespace

BesChecker::BesChecker(const symbolic::SymbolicSystem& sys, BesOptions opts)
    : sys_(&sys), opts_(std::move(opts)) {
  CMC_ASSERT(sys.ctx != nullptr);
}

bool BesChecker::supports(const symbolic::SymbolicSystem& sys,
                          const ctl::Spec& spec, std::string* whyNot) {
  if (spec.r.init != nullptr && !ctl::isPropositional(spec.r.init)) {
    if (whyNot) *whyNot = "non-propositional initial-state restriction";
    return false;
  }
  if (!atomsOk(sys, spec.r.init, whyNot)) return false;
  if (!atomsOk(sys, spec.f, whyNot)) return false;
  for (const FormulaPtr& f : spec.r.fairness) {
    if (!atomsOk(sys, f, whyNot)) return false;
  }
  return true;
}

// ---- Normalization ---------------------------------------------------------

BesChecker::Ref BesChecker::mkNode(Node n) {
  std::string key;
  key += static_cast<char>('A' + static_cast<int>(n.kind));
  key += std::to_string(n.a.node) + (n.a.neg ? "!" : ".");
  key += std::to_string(n.b.node) + (n.b.neg ? "!" : ".");
  key += n.atom;
  const auto it = nodeIndex_.find(key);
  if (it != nodeIndex_.end()) return Ref{it->second, false};
  const int id = static_cast<int>(nodes_.size());
  nodes_.push_back(std::move(n));
  nodeIndex_.emplace(std::move(key), id);
  return Ref{id, false};
}

BesChecker::Ref BesChecker::normalize(const FormulaPtr& f, bool neg) {
  CMC_ASSERT(f != nullptr);
  const auto lift = [neg](Ref r) {
    r.neg = r.neg != neg;
    return r;
  };
  switch (f->op()) {
    case Op::True:
      return Ref{0, neg};  // node 0 is the shared True node
    case Op::False:
      return Ref{0, !neg};
    case Op::Atom: {
      Node n;
      n.kind = Kind::Atom;
      n.atom = f->atom();
      return lift(mkNode(std::move(n)));
    }
    case Op::Not:
      return normalize(f->lhs(), !neg);
    case Op::And:
    case Op::Or: {
      Node n;
      n.kind = f->op() == Op::And ? Kind::And : Kind::Or;
      n.a = normalize(f->lhs(), false);
      n.b = normalize(f->rhs(), false);
      return lift(mkNode(std::move(n)));
    }
    case Op::Implies: {  // a → b ≡ ¬a ∨ b
      Node n;
      n.kind = Kind::Or;
      n.a = normalize(f->lhs(), true);
      n.b = normalize(f->rhs(), false);
      return lift(mkNode(std::move(n)));
    }
    case Op::Iff: {  // a ↔ b ≡ (¬a∨b) ∧ (¬b∨a)
      const Ref a = normalize(f->lhs(), false);
      const Ref b = normalize(f->rhs(), false);
      Node fwd;
      fwd.kind = Kind::Or;
      fwd.a = Ref{a.node, !a.neg};
      fwd.b = b;
      Node bwd;
      bwd.kind = Kind::Or;
      bwd.a = Ref{b.node, !b.neg};
      bwd.b = a;
      Node n;
      n.kind = Kind::And;
      n.a = mkNode(std::move(fwd));
      n.b = mkNode(std::move(bwd));
      return lift(mkNode(std::move(n)));
    }
    case Op::EX:
    case Op::AX: {  // AX f ≡ ¬EX ¬f
      const bool dual = f->op() == Op::AX;
      Node n;
      n.kind = Kind::Ex;
      n.a = normalize(f->lhs(), dual);
      Ref r = mkNode(std::move(n));
      r.neg = dual != neg;
      return r;
    }
    case Op::EF:
    case Op::AG: {  // EF f ≡ E[true U f];  AG f ≡ ¬E[true U ¬f]
      const bool dual = f->op() == Op::AG;
      Node n;
      n.kind = Kind::Eu;
      n.a = Ref{0, false};
      n.b = normalize(f->lhs(), dual);
      Ref r = mkNode(std::move(n));
      r.neg = dual != neg;
      return r;
    }
    case Op::EG:
    case Op::AF: {  // AF f ≡ ¬EG ¬f
      const bool dual = f->op() == Op::AF;
      Node n;
      n.kind = Kind::Eg;
      n.a = normalize(f->lhs(), dual);
      Ref r = mkNode(std::move(n));
      r.neg = dual != neg;
      return r;
    }
    case Op::EU: {
      Node n;
      n.kind = Kind::Eu;
      n.a = normalize(f->lhs(), false);
      n.b = normalize(f->rhs(), false);
      return lift(mkNode(std::move(n)));
    }
    case Op::AU: {  // A[f U g] ≡ ¬(E[¬g U ¬f∧¬g] ∨ EG ¬g)
      const Ref nf = normalize(f->lhs(), true);
      const Ref ng = normalize(f->rhs(), true);
      Node both;
      both.kind = Kind::And;
      both.a = nf;
      both.b = ng;
      Node eu;
      eu.kind = Kind::Eu;
      eu.a = ng;
      eu.b = mkNode(std::move(both));
      Node eg;
      eg.kind = Kind::Eg;
      eg.a = ng;
      Node either;
      either.kind = Kind::Or;
      either.a = mkNode(std::move(eu));
      either.b = mkNode(std::move(eg));
      Ref r = mkNode(std::move(either));
      r.neg = !neg;
      return r;
    }
  }
  throw Error("bes normalize: unreachable");
}

// ---- Local solver ----------------------------------------------------------

bool BesChecker::fairTruth(StateId s) {
  return fairNode_ < 0 || rawValue(fairNode_, s);
}

bool BesChecker::rawValue(int n, StateId s) {
  const Node& nd = nodes_[n];
  switch (nd.kind) {
    case Kind::True:
      return true;
    case Kind::Atom:
      return graph_->atomHolds(s, nd.atom);
    case Kind::And:
      return evalRef(nd.a, s) && evalRef(nd.b, s);
    case Kind::Or:
      return evalRef(nd.a, s) || evalRef(nd.b, s);
    case Kind::Ex: {
      const std::uint64_t key = (static_cast<std::uint64_t>(n) << 32) | s;
      const auto it = memo_.find(key);
      if (it != memo_.end()) return it->second;
      if (opts_.cancelCheck) opts_.cancelCheck();
      bool value = false;
      for (const StateId t : graph_->successors(s)) {
        if (evalRef(nd.a, t) && fairTruth(t)) {
          value = true;
          break;
        }
      }
      memo_.emplace(key, value);
      return value;
    }
    case Kind::Eu:
    case Kind::Eg: {
      const std::uint64_t key = (static_cast<std::uint64_t>(n) << 32) | s;
      const auto it = memo_.find(key);
      if (it != memo_.end()) return it->second;
      const bool flipped = solveBlock(n, s);
      // Eu flips default-false → true; Eg (solved complemented) flips
      // default-true → false.
      return nd.kind == Kind::Eu ? flipped : !flipped;
    }
  }
  throw Error("bes rawValue: unreachable");
}

bool BesChecker::solveBlock(int n, StateId s) {
  ++stats_.blockSolves;
  const Node& nd = nodes_[n];
  const bool isEu = nd.kind == Kind::Eu;
  const std::uint64_t base = static_cast<std::uint64_t>(n) << 32;

  // Per-variable solve state.  References into the map stay valid across
  // inserts (unordered_map is node-based), which the lambdas below rely on.
  struct Entry {
    bool flipped = false;
    bool expanded = false;
    std::uint32_t need = 0;          ///< unflipped children (AND-style only)
    std::vector<StateId> parents;    ///< block-internal reverse dependencies
  };
  std::unordered_map<StateId, Entry> vars;
  std::vector<StateId> todo{s};
  std::vector<StateId> flips;
  vars.emplace(s, Entry{});

  const auto flip = [&](StateId t) {
    Entry& e = vars[t];
    if (e.flipped) return;
    e.flipped = true;
    ++stats_.varsFlipped;
    // A flip is final (monotone iteration toward the fixpoint), so it is
    // memoized immediately even if the solve later short-circuits.
    memo_[base | t] = isEu;
    flips.push_back(t);
  };

  while (!todo.empty() || !flips.empty()) {
    if (vars[s].flipped) break;  // the query is decided: short-circuit
    if (!flips.empty()) {
      // Drain pending propagation before exploring further — a cascade can
      // reach the query without ever touching the unexplored frontier.
      const StateId t = flips.back();
      flips.pop_back();
      for (const StateId p : vars[t].parents) {
        Entry& pe = vars[p];
        if (pe.flipped) continue;
        if (isEu) {
          flip(p);  // OR over successors: one flipped child suffices
        } else if (--pe.need == 0) {
          flip(p);  // AND over successors: the last child just flipped
        }
      }
      continue;
    }
    const StateId t = todo.back();
    todo.pop_back();
    Entry& e = vars[t];
    if (e.expanded || e.flipped) continue;
    e.expanded = true;
    if (opts_.cancelCheck) opts_.cancelCheck();

    // A previous solve of this block may have decided the variable.  A
    // memoized no-flip is final — it contributes nothing and never will,
    // which for an AND-parent correctly pins `need` above zero forever.
    const auto mIt = memo_.find(base | t);
    if (mIt != memo_.end()) {
      const bool wasFlipped = isEu ? mIt->second : !mIt->second;
      if (wasFlipped) flip(t);
      continue;
    }

    // Literals before successors: E[f U g] decided by g∧fair / blocked by
    // ¬f, ¬EG f flipped by ¬f — all without expanding the graph.
    if (isEu) {
      if (evalRef(nd.b, t) && fairTruth(t)) {
        flip(t);
        continue;
      }
      if (!evalRef(nd.a, t)) continue;  // guard false: X_t never flips
    } else if (!evalRef(nd.a, t)) {
      flip(t);  // ¬f(t) ⇒ ¬EG f at t
      continue;
    }

    const std::vector<StateId>& succs = graph_->successors(t);
    if (isEu) {
      bool anyFlipped = false;
      for (const StateId u : succs) {
        auto [uIt, fresh] = vars.emplace(u, Entry{});
        if (uIt->second.flipped) {
          anyFlipped = true;
          break;
        }
        uIt->second.parents.push_back(t);
        if (fresh) todo.push_back(u);
      }
      if (anyFlipped) flip(t);
      // Deadlock: no successor can ever witness the until — stays default.
    } else {
      std::uint32_t pending = 0;
      for (const StateId u : succs) {
        auto [uIt, fresh] = vars.emplace(u, Entry{});
        if (uIt->second.flipped) continue;
        ++pending;
        uIt->second.parents.push_back(t);
        if (fresh) todo.push_back(u);
      }
      if (pending == 0) {
        flip(t);  // all (possibly zero) successors flipped: ⋀ holds
      } else {
        e.need = pending;
      }
    }
  }

  const bool queryFlipped = vars[s].flipped;
  if (!queryFlipped) {
    // The worklist drained with the dependency closure fully explored, so
    // the remaining defaults are the fixpoint values: final, memoize them.
    for (const auto& [t, e] : vars) {
      if (!e.flipped) memo_[base | t] = !isEu;
    }
  }
  return queryFlipped;
}

// ---- Dense fallback --------------------------------------------------------

void BesChecker::denseHolds(const ctl::Spec& spec, BesResult* out) {
  stats_.densePath = true;
  graph_->close(opts_.cancelCheck);
  const std::size_t n = graph_->stateCount();
  using Set = std::vector<char>;
  const Set all(n, 1), none(n, 0);

  const auto preE = [&](const Set& x) {
    if (opts_.cancelCheck) opts_.cancelCheck();
    Set out_(n, 0);
    for (StateId st = 0; st < n; ++st) {
      for (const StateId t : graph_->successors(st)) {
        if (x[t]) {
          out_[st] = 1;
          break;
        }
      }
    }
    return out_;
  };
  const auto conj = [&](const Set& a, const Set& b) {
    Set out_(n);
    for (std::size_t i = 0; i < n; ++i) out_[i] = a[i] & b[i];
    return out_;
  };
  const auto disj = [&](const Set& a, const Set& b) {
    Set out_(n);
    for (std::size_t i = 0; i < n; ++i) out_[i] = a[i] | b[i];
    return out_;
  };
  const auto compl_ = [&](const Set& a) {
    Set out_(n);
    for (std::size_t i = 0; i < n; ++i) out_[i] = a[i] ? 0 : 1;
    return out_;
  };
  const auto untilE = [&](const Set& f, const Set& g) {
    Set q = g;  // lfp Q. g ∨ (f ∧ EX Q)
    for (;;) {
      const Set next = disj(q, conj(f, preE(q)));
      if (next == q) return q;
      q = next;
    }
  };
  const auto fairEG = [&](const Set& region, const std::vector<Set>& fairIn) {
    std::vector<Set> fair = fairIn;  // νZ. region ∧ ⋀_F EX E[region U Z∧F]
    if (fair.empty()) fair.push_back(all);
    Set z = region;
    for (;;) {
      Set next = z;
      for (const Set& fc : fair) {
        next = conj(next, conj(region, preE(untilE(region, conj(next, fc)))));
      }
      if (next == z) return z;
      z = next;
    }
  };

  // The exact mirror of symbolic::Checker::satRec over bit-vectors.
  const std::function<Set(const FormulaPtr&, const std::vector<Set>&,
                          const Set&)>
      satRec = [&](const FormulaPtr& f, const std::vector<Set>& fairSets,
                   const Set& fair) -> Set {
    CMC_ASSERT(f != nullptr);
    switch (f->op()) {
      case Op::True:
        return all;
      case Op::False:
        return none;
      case Op::Atom: {
        Set out_(n, 0);
        for (StateId st = 0; st < n; ++st) {
          out_[st] = graph_->atomHolds(st, f->atom()) ? 1 : 0;
        }
        return out_;
      }
      case Op::Not:
        return compl_(satRec(f->lhs(), fairSets, fair));
      case Op::And:
        return conj(satRec(f->lhs(), fairSets, fair),
                    satRec(f->rhs(), fairSets, fair));
      case Op::Or:
        return disj(satRec(f->lhs(), fairSets, fair),
                    satRec(f->rhs(), fairSets, fair));
      case Op::Implies:
        return disj(compl_(satRec(f->lhs(), fairSets, fair)),
                    satRec(f->rhs(), fairSets, fair));
      case Op::Iff: {
        const Set a = satRec(f->lhs(), fairSets, fair);
        const Set b = satRec(f->rhs(), fairSets, fair);
        return disj(conj(a, b), conj(compl_(a), compl_(b)));
      }
      case Op::EX:
        return preE(conj(satRec(f->lhs(), fairSets, fair), fair));
      case Op::AX:
        return compl_(
            preE(conj(compl_(satRec(f->lhs(), fairSets, fair)), fair)));
      case Op::EU:
        return untilE(satRec(f->lhs(), fairSets, fair),
                      conj(satRec(f->rhs(), fairSets, fair), fair));
      case Op::EF:
        return untilE(all, conj(satRec(f->lhs(), fairSets, fair), fair));
      case Op::EG:
        return fairEG(satRec(f->lhs(), fairSets, fair), fairSets);
      case Op::AF:
        return compl_(
            fairEG(compl_(satRec(f->lhs(), fairSets, fair)), fairSets));
      case Op::AG:
        return compl_(untilE(
            all, conj(compl_(satRec(f->lhs(), fairSets, fair)), fair)));
      case Op::AU: {
        const Set sf = satRec(f->lhs(), fairSets, fair);
        const Set ng = compl_(satRec(f->rhs(), fairSets, fair));
        const Set part1 = untilE(ng, conj(conj(compl_(sf), ng), fair));
        const Set part2 = fairEG(ng, fairSets);
        return compl_(disj(part1, part2));
      }
    }
    throw Error("bes denseSat: unreachable");
  };

  std::vector<Set> fairSets;
  for (const FormulaPtr& fc : spec.r.fairness) {
    fairSets.push_back(satRec(fc, {}, all));
  }
  const Set fair = fairSets.empty() ? all : fairEG(all, fairSets);
  const Set satF = satRec(spec.f, fairSets, fair);

  // Roots are exactly the init ∧ domain states the symbolic checker tests.
  for (const StateId r : graph_->roots()) {
    if (!satF[r]) {
      out->holds = false;
      out->counterexample = "violating state: " + graph_->render(r);
      return;
    }
  }
  out->holds = true;
}

// ---- Entry point -----------------------------------------------------------

BesResult BesChecker::holds(const ctl::Spec& spec) {
  std::string whyNot;
  if (!supports(*sys_, spec, &whyNot)) {
    throw ModelError("bes backend cannot decide spec '" + spec.name +
                     "': " + whyNot);
  }
  BesResult result;
  nodes_.clear();
  nodeIndex_.clear();
  memo_.clear();
  fairNode_ = -1;
  stats_ = BesStats{};

  // Roots: every valid state satisfying the restriction's init predicate
  // (the symbolic checker's domain ∧ sat(init) — enumeration over declared
  // value indices never produces an invalid encoding).
  const FormulaPtr init =
      spec.r.init != nullptr ? spec.r.init : ctl::mkTrue();
  graph_ = std::make_unique<StateGraph>(
      *sys_, symbolic::propositionalBdd(*sys_->ctx, init));

  if (!trivialFairness(spec.r.fairness)) {
    // Nontrivial fairness alternates (μ-until inside the ν-fair-EG), which
    // the hierarchical local solver cannot express — evaluate densely.
    denseHolds(spec, &result);
  } else {
    // Node 0 is the shared True leaf; create it before anything else so
    // every Ref{0, neg} in normalize() lands on it.
    Node trueNode;
    trueNode.kind = Kind::True;
    mkNode(std::move(trueNode));
    if (!spec.r.fairness.empty()) {
      // FAIR ≡ EG true: the states admitting an infinite path.  Created
      // before the formula so its block is below every client in the DAG.
      Node fairEg;
      fairEg.kind = Kind::Eg;
      fairEg.a = Ref{0, false};
      fairNode_ = mkNode(std::move(fairEg)).node;
    }
    const Ref root = normalize(spec.f, false);
    for (const StateId r : graph_->roots()) {
      if (opts_.cancelCheck) opts_.cancelCheck();
      if (!evalRef(root, r)) {
        result.holds = false;
        result.counterexample = "violating state: " + graph_->render(r);
        break;
      }
    }
  }
  stats_.statesExplored = graph_->stateCount();
  result.stats = stats_;
  return result;
}

}  // namespace cmc::bes
