#include "bes/state_graph.hpp"

#include <utility>

#include "util/common.hpp"

namespace cmc::bes {

std::size_t StateGraph::VectorHash::operator()(
    const std::vector<std::uint32_t>& v) const noexcept {
  // FNV-1a over the value indices.
  std::size_t h = 1469598103934665603ull;
  for (const std::uint32_t x : v) {
    h ^= x;
    h *= 1099511628211ull;
  }
  return h;
}

StateGraph::StateGraph(const symbolic::SymbolicSystem& sys, bdd::Bdd init)
    : sys_(&sys) {
  for (std::size_t i = 0; i < sys.vars.size(); ++i) varPos_[sys.vars[i]] = i;
  enumerateStates(init, /*next=*/false, &roots_);
}

StateId StateGraph::intern(const std::vector<std::uint32_t>& values) {
  const auto it = index_.find(values);
  if (it != index_.end()) return it->second;
  const StateId id = static_cast<StateId>(states_.size());
  states_.push_back(values);
  index_.emplace(values, id);
  succKnown_.push_back(false);
  succ_.emplace_back();
  return id;
}

void StateGraph::enumerateStates(const bdd::Bdd& b, bool next,
                                 std::vector<StateId>* out) {
  if (b.isFalse()) return;
  std::vector<std::uint32_t> partial;
  partial.reserve(sys_->vars.size());
  enumerateRec(b, next, 0, &partial, out);
}

void StateGraph::enumerateRec(const bdd::Bdd& b, bool next, std::size_t varPos,
                              std::vector<std::uint32_t>* partial,
                              std::vector<StateId>* out) {
  if (varPos == sys_->vars.size()) {
    // Every bit of every variable is fixed, so b is non-false iff this
    // assignment satisfies it (any residual support is outside Σ and
    // existential).
    out->push_back(intern(*partial));
    return;
  }
  symbolic::Context& ctx = *sys_->ctx;
  const symbolic::VarId v = sys_->vars[varPos];
  const std::size_t domainSize = ctx.variable(v).values.size();
  for (std::size_t idx = 0; idx < domainSize; ++idx) {
    bdd::Bdd restricted = b & ctx.varEqIndex(v, idx, next);
    if (restricted.isFalse()) continue;
    partial->push_back(static_cast<std::uint32_t>(idx));
    enumerateRec(restricted, next, varPos + 1, partial, out);
    partial->pop_back();
  }
}

bdd::Bdd StateGraph::stateBdd(StateId s) {
  symbolic::Context& ctx = *sys_->ctx;
  bdd::Bdd b = ctx.mgr().bddTrue();
  const std::vector<std::uint32_t>& values = states_[s];
  for (std::size_t i = 0; i < sys_->vars.size(); ++i) {
    b &= ctx.varEqIndex(sys_->vars[i], values[i], /*next=*/false);
  }
  return b;
}

const std::vector<StateId>& StateGraph::successors(StateId s) {
  if (succKnown_[s]) return succ_[s];
  const bdd::Bdd cur = stateBdd(s);
  std::vector<StateId> result;
  // The current bits are fixed, so each track's conjunction collapses fast;
  // preimage machinery (early quantification, partial swaps) buys nothing
  // for a single source state.
  for (const symbolic::PartitionedRelation& track : sys_->partition.tracks) {
    bdd::Bdd restricted = cur;
    for (const symbolic::Conjunct& c : track.conjuncts()) {
      restricted &= c.rel;
      if (restricted.isFalse()) break;
    }
    if (restricted.isFalse()) continue;
    enumerateStates(restricted, /*next=*/true, &result);
  }
  // Tracks overlap (e.g. the stutter transition appears in several), so
  // dedupe; order is irrelevant to the solver.
  std::vector<StateId> deduped;
  deduped.reserve(result.size());
  std::vector<bool> seen;
  for (const StateId t : result) {
    if (t >= seen.size()) seen.resize(states_.size(), false);
    if (seen[t]) continue;
    seen[t] = true;
    deduped.push_back(t);
  }
  // successors() interns new states, so succ_/succKnown_ may have grown
  // (and been reallocated) since the check at the top — index again.
  succ_[s] = std::move(deduped);
  succKnown_[s] = true;
  return succ_[s];
}

bool StateGraph::atomHolds(StateId s, const std::string& atomText) {
  auto it = atoms_.find(atomText);
  if (it == atoms_.end()) {
    symbolic::Context& ctx = *sys_->ctx;
    std::size_t pos = 0;
    std::uint32_t valueIdx = 0;
    const std::size_t eq = atomText.find('=');
    if (eq == std::string::npos) {
      const symbolic::VarId id = ctx.varId(atomText);
      if (!ctx.variable(id).isBool) {
        throw ModelError("atom '" + atomText +
                         "' names a non-boolean variable; use " + atomText +
                         "=value");
      }
      const auto posIt = varPos_.find(id);
      if (posIt == varPos_.end()) {
        throw ModelError("atom '" + atomText + "' is outside the system");
      }
      pos = posIt->second;
      valueIdx = 1;  // booleans are {"0", "1"}
    } else {
      const symbolic::VarId id = ctx.varId(atomText.substr(0, eq));
      const auto posIt = varPos_.find(id);
      if (posIt == varPos_.end()) {
        throw ModelError("atom '" + atomText + "' is outside the system");
      }
      pos = posIt->second;
      valueIdx = static_cast<std::uint32_t>(
          ctx.variable(id).valueIndex(atomText.substr(eq + 1)));
    }
    it = atoms_.emplace(atomText, std::make_pair(pos, valueIdx)).first;
  }
  return states_[s][it->second.first] == it->second.second;
}

std::string StateGraph::render(StateId s) const {
  std::string out;
  for (std::size_t i = 0; i < sys_->vars.size(); ++i) {
    const symbolic::Variable& v = sys_->ctx->variable(sys_->vars[i]);
    if (!out.empty()) out += " ";
    out += v.name + "=" + v.values[states_[s][i]];
  }
  return out.empty() ? "<empty state>" : out;
}

void StateGraph::close(const std::function<void()>& cancelCheck) {
  if (closed_) return;
  // states_ grows as we sweep; the index doubles as the BFS frontier since
  // every interned state gets expanded exactly once.
  for (StateId s = 0; s < states_.size(); ++s) {
    if (cancelCheck) cancelCheck();
    successors(s);
  }
  closed_ = true;
}

}  // namespace cmc::bes
