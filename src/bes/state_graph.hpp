// Explicit state graph over a SymbolicSystem, for the BES solving backend.
//
// The BES engine trades BDD fixpoints for local worklist propagation over
// *explicit* states, so it needs the model as a graph: states are full
// assignments of the system's variables (interned to dense ids), roots are
// the states satisfying init ∧ domain, and edges follow the partitioned
// transition relation.  Both enumerations are BDD-guided — a state's
// candidate extensions are pruned by conjoining `var = value` predicates and
// dropping false branches — so the graph is only ever grown on demand: the
// solver explores exactly the dependency closure of the query, never the
// full state space.
//
// The graph owns no BDDs long-term; enumeration intermediates die at the end
// of each call.  The underlying Context must outlive the graph and must not
// be shared with another thread while the graph is in use (BDD managers are
// single-threaded).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "symbolic/system.hpp"

namespace cmc::bes {

using StateId = std::uint32_t;

class StateGraph {
 public:
  /// `init` is the propositional initial-state predicate over current-state
  /// bits; roots are its satisfying valid assignments of `sys.vars`.
  StateGraph(const symbolic::SymbolicSystem& sys, bdd::Bdd init);

  const std::vector<StateId>& roots() const noexcept { return roots_; }

  /// Successor states of `s` under the system's transition relation
  /// (deduplicated, lazily computed and memoized).
  const std::vector<StateId>& successors(StateId s);

  /// Truth of a CTL atom ("x" or "var=value") in state `s`.  Parsed atom
  /// texts are memoized; throws ModelError for unknown variables/values.
  bool atomHolds(StateId s, const std::string& atomText);

  /// Human-readable rendering "v1=a v2=0 ..." for counterexamples.
  std::string render(StateId s) const;

  /// States interned so far (grows as the solver explores).
  std::size_t stateCount() const noexcept { return states_.size(); }

  /// Explore the full forward closure of the roots (BFS).  `cancelCheck`
  /// is invoked once per expanded state and may throw to abort.  Needed by
  /// the dense evaluation path, which iterates fixpoints over bit-vectors
  /// and so requires the reachable set up front.
  void close(const std::function<void()>& cancelCheck);

  /// True once close() has completed.
  bool closed() const noexcept { return closed_; }

 private:
  /// Enumerate all valid assignments of sys_->vars satisfying `b` (over the
  /// current or next columns) and intern each, appending ids to `out`.
  void enumerateStates(const bdd::Bdd& b, bool next, std::vector<StateId>* out);
  void enumerateRec(const bdd::Bdd& b, bool next, std::size_t varPos,
                    std::vector<std::uint32_t>* partial,
                    std::vector<StateId>* out);
  StateId intern(const std::vector<std::uint32_t>& values);
  /// Conjunction of `var = value` over every variable, current column.
  bdd::Bdd stateBdd(StateId s);

  struct VectorHash {
    std::size_t operator()(const std::vector<std::uint32_t>& v) const noexcept;
  };

  const symbolic::SymbolicSystem* sys_;
  std::vector<std::vector<std::uint32_t>> states_;  ///< id → value indices
  std::unordered_map<std::vector<std::uint32_t>, StateId, VectorHash> index_;
  std::vector<StateId> roots_;

  std::vector<bool> succKnown_;
  std::vector<std::vector<StateId>> succ_;

  /// Atom text → (position in sys.vars, value index).
  std::unordered_map<std::string, std::pair<std::size_t, std::uint32_t>>
      atoms_;
  /// VarId → position in sys_->vars.
  std::unordered_map<symbolic::VarId, std::size_t> varPos_;

  bool closed_ = false;
};

}  // namespace cmc::bes
