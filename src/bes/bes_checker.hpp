// The BES solving backend: compiles a CTL obligation into a Boolean
// Equation System over the explicit states of the model and solves it with
// a local (on-the-fly) worklist solver — no BDD fixpoints, no Gauss
// elimination, and no full state-space materialization unless the query
// demands it (Lang & Mateescu, "Partial Model Checking using Networks of
// LTSs and Boolean Equation Systems").
//
// Translation.  The spec formula is normalized to a DAG over the core
// operators {True, False, Atom, And, Or, EX, EU, EG}; negation lives on
// *references* (polarity flags), and the derived operators desugar exactly
// the way symbolic::Checker::satRec evaluates them:
//
//   AX f          ≡ ¬EX ¬f
//   EF f          ≡ E[true U f]           AF f ≡ ¬EG ¬f
//   AG f          ≡ ¬E[true U ¬f]         a→b  ≡ ¬a ∨ b
//   A[f U g]      ≡ ¬(E[¬g U ¬f∧¬g] ∨ EG ¬g)
//
// The fairness constraint of the restriction r=(I,F) is woven in at the
// same points satRec conjoins `fair`: EX steps into fair successors, the
// target of every EU is fair-constrained, and EG is the fair νZ-iteration.
// Each temporal node spawns one equation *block* per queried state:
//
//   EU:   X_s =μ (g(s) ∧ fair(s)) ∨ (f(s) ∧ ⋁_{t∈succ(s)} X_t)
//   EG:   X_s =ν f(s) ∧ ⋁_{t∈succ(s)} X_t
//   FAIR: X_s =ν ⋁_{t∈succ(s)} X_t        (the trivial-fairness {true} set)
//
// Blocks reference each other only along the (acyclic) formula DAG, so the
// system is hierarchical — the alternation-free fragment — and each block
// is solved independently in "flip space": ν-blocks are complemented into
// μ-form, defaults flip monotonically toward the fixpoint, a flip is
// final the moment it happens, and the solve short-circuits as soon as the
// queried variable flips.  Unflipped variables are final only once the
// block's dependency closure is exhausted.
//
// Scope.  Nontrivial fairness (fairness formulas other than `true`) makes
// fair-EG genuinely alternating; those specs are evaluated on a dense
// bit-vector mirror of satRec over the *closed* reachable graph instead —
// sound because CTL is forward-looking, so the forward closure of the
// init ∧ domain states determines every verdict (see THEORY.md).  Specs the
// backend cannot take at all (non-propositional init, atoms outside the
// system's alphabet) are reported by supports(); the scheduler falls back
// to the symbolic engine.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "bes/state_graph.hpp"
#include "ctl/formula.hpp"
#include "symbolic/system.hpp"

namespace cmc::bes {

struct BesOptions {
  /// Polled once per solver step / expanded state; throws to abort (the
  /// scheduler installs the same BudgetToken + cancel hook the symbolic
  /// checker gets via CheckerOptions::cancelCheck).
  std::function<void()> cancelCheck;
};

struct BesStats {
  std::uint64_t statesExplored = 0;  ///< interned states at the end
  std::uint64_t varsFlipped = 0;     ///< BES variables flipped while solving
  std::uint64_t blockSolves = 0;     ///< local block fixpoints run
  bool densePath = false;            ///< nontrivial fairness: dense satRec
};

struct BesResult {
  bool holds = true;
  /// For a failed spec: the violating initial state, rendered.
  std::string counterexample;
  BesStats stats;
};

class BesChecker {
 public:
  explicit BesChecker(const symbolic::SymbolicSystem& sys,
                      BesOptions opts = {});

  /// True iff this backend can decide `spec` on `sys` exactly.  On false,
  /// `whyNot` (when non-null) gets a short reason for the engine-choice
  /// record.
  static bool supports(const symbolic::SymbolicSystem& sys,
                       const ctl::Spec& spec, std::string* whyNot = nullptr);

  /// Decide the spec under its restriction, matching symbolic::Checker
  /// verdicts exactly.  Throws (ModelError / the cancelCheck exception) on
  /// unsupported input or abort — call supports() first.
  BesResult holds(const ctl::Spec& spec);

 private:
  // ---- Normalized formula DAG ---------------------------------------------
  enum class Kind : std::uint8_t { True, Atom, And, Or, Ex, Eu, Eg };
  struct Ref {
    int node = -1;
    bool neg = false;
  };
  struct Node {
    Kind kind = Kind::True;
    Ref a, b;          ///< And/Or: operands; Ex/Eg: a; Eu: a=f, b=g
    std::string atom;  ///< Kind::Atom only
  };

  Ref normalize(const ctl::FormulaPtr& f, bool neg);
  Ref mkNode(Node n);

  // ---- Local solver --------------------------------------------------------
  /// Truth of node `n`'s formula at state `s` (positive polarity; negation
  /// is resolved at the reference).
  bool rawValue(int n, StateId s);
  bool evalRef(Ref r, StateId s) {
    return rawValue(r.node, s) != r.neg;
  }
  /// Truth of the fairness constraint at `s` (constant true when the
  /// restriction has no fairness formulas).
  bool fairTruth(StateId s);
  /// Solve the equation block of temporal node `n` for state `s` in flip
  /// space; returns whether X_s flipped away from the block's default.
  bool solveBlock(int n, StateId s);

  // ---- Dense fallback (nontrivial fairness) -------------------------------
  /// Close the graph and evaluate the spec with a bit-vector mirror of
  /// symbolic::Checker::satRec over the explicit reachable states.
  void denseHolds(const ctl::Spec& spec, BesResult* out);

  const symbolic::SymbolicSystem* sys_;
  BesOptions opts_;
  std::unique_ptr<StateGraph> graph_;
  BesStats stats_;

  std::vector<Node> nodes_;
  std::unordered_map<std::string, int> nodeIndex_;  ///< structural hash-cons
  int fairNode_ = -1;  ///< FAIR block node, or -1 when fairness is empty

  /// Global memo: (node, state) → truth, keyed node * 2^32 + state.
  std::unordered_map<std::uint64_t, bool> memo_;
};

}  // namespace cmc::bes
