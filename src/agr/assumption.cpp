#include "agr/assumption.hpp"

#include <algorithm>

#include "util/common.hpp"
#include "util/hash.hpp"

namespace cmc::agr {

std::size_t Assumption::relationSize() const {
  return static_cast<std::size_t>(
      std::count(allowed.begin(), allowed.end(), true));
}

bool Assumption::allowsAll() const {
  return std::all_of(allowed.begin(), allowed.end(),
                     [](bool b) { return b; });
}

std::string Assumption::digest() const {
  StableHash128 h;
  h.update("agr-assumption-v1");
  for (const InterfaceVar& v : alphabet.vars) {
    h.sep();
    h.update(v.name);
    for (const std::string& val : v.values) {
      h.sep();
      h.update(val);
    }
  }
  h.sep();
  h.update(std::to_string(dfa.states));
  // The relation as a bit string; the DFA's transition table is not hashed
  // separately — premises depend on the relation only.
  std::string bits(allowed.size(), '0');
  for (std::size_t i = 0; i < allowed.size(); ++i) {
    if (allowed[i]) bits[i] = '1';
  }
  h.sep();
  h.update(bits);
  return h.hex();
}

namespace {

/// Declarations of the interface variables, with their original domains.
std::vector<smv::VarDecl> interfaceDecls(const Alphabet& alphabet) {
  std::vector<smv::VarDecl> decls;
  decls.reserve(alphabet.vars.size());
  for (const InterfaceVar& v : alphabet.vars) {
    decls.push_back(smv::VarDecl{v.name, v.type});
  }
  return decls;
}

/// Conjunction of per-variable equations pinning one letter in the given
/// column (current or next).
smv::ExprPtr letterExpr(const Alphabet& alphabet, std::size_t letter,
                        bool next) {
  const std::vector<std::size_t> digits = alphabet.decode(letter);
  smv::ExprPtr acc;
  for (std::size_t i = 0; i < alphabet.vars.size(); ++i) {
    const InterfaceVar& v = alphabet.vars[i];
    smv::ExprPtr ref = next ? smv::mkNextRef(v.name) : smv::mkVarRef(v.name);
    smv::ExprPtr eq = smv::mkBinary(smv::ExprKind::Eq, std::move(ref),
                                    smv::mkValue(v.values[digits[i]]));
    acc = acc ? smv::mkBinary(smv::ExprKind::And, std::move(acc),
                              std::move(eq))
              : std::move(eq);
  }
  return acc;
}

/// Balanced disjunction — the relation can have thousands of disjuncts and
/// elaboration recurses over the expression tree.
smv::ExprPtr disjoin(std::vector<smv::ExprPtr> terms) {
  while (terms.size() > 1) {
    std::vector<smv::ExprPtr> merged;
    merged.reserve((terms.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < terms.size(); i += 2) {
      merged.push_back(smv::mkBinary(smv::ExprKind::Or, terms[i],
                                     terms[i + 1]));
    }
    if (terms.size() % 2 == 1) merged.push_back(terms.back());
    terms = std::move(merged);
  }
  return terms.empty() ? nullptr : terms.front();
}

}  // namespace

smv::Module Assumption::toModule(const std::string& name) const {
  if (alphabet.vars.empty()) {
    throw ModelError("assumption over an empty interface has no module");
  }
  smv::Module mod;
  mod.name = name;
  mod.vars = interfaceDecls(alphabet);
  if (allowsAll()) return mod;  // no next() constraints: free inputs
  std::vector<smv::ExprPtr> steps;
  const std::size_t n = letters();
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = 0; b < n; ++b) {
      if (!allows(a, b)) continue;
      steps.push_back(smv::mkBinary(smv::ExprKind::And,
                                    letterExpr(alphabet, a, false),
                                    letterExpr(alphabet, b, true)));
    }
  }
  if (steps.empty()) {
    // An empty relation still needs a well-formed TRANS; "0" is the empty
    // step relation (the module can only stutter through composition's Id).
    mod.transConstraints.push_back(smv::mkValue("0"));
    return mod;
  }
  mod.transConstraints.push_back(disjoin(std::move(steps)));
  return mod;
}

Assumption assumptionFromDfa(const Alphabet& alphabet, const Dfa& dfa) {
  Assumption out;
  out.alphabet = alphabet;
  out.dfa = dfa;
  const std::size_t n = alphabet.size();
  out.allowed.assign(n * n, false);
  for (std::size_t a = 0; a < n; ++a) {
    const std::size_t qa = dfa.next(0, a);
    if (!dfa.accepting[qa]) continue;
    for (std::size_t b = 0; b < n; ++b) {
      const std::size_t qb = dfa.next(qa, b);
      if (dfa.accepting[qb]) out.allowed[a * n + b] = true;
    }
  }
  return out;
}

smv::Module stepModule(const Alphabet& alphabet, std::size_t a, std::size_t b,
                       const std::string& name) {
  if (alphabet.vars.empty()) {
    throw ModelError("step module over an empty interface");
  }
  smv::Module mod;
  mod.name = name;
  mod.vars = interfaceDecls(alphabet);
  mod.transConstraints.push_back(
      smv::mkBinary(smv::ExprKind::And, letterExpr(alphabet, a, false),
                    letterExpr(alphabet, b, true)));
  return mod;
}

}  // namespace cmc::agr
