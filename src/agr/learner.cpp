#include "agr/learner.hpp"

#include <algorithm>

#include "util/common.hpp"

namespace cmc::agr {

LStar::LStar(std::size_t alphabet, MembershipFn member)
    : alphabet_(alphabet), member_(std::move(member)) {
  s_.push_back({});  // ε
  e_.push_back({});  // ε
}

bool LStar::member(const Word& w) {
  auto it = memo_.find(w);
  if (it != memo_.end()) return it->second;
  ++queries_;
  const bool verdict = member_(w);
  memo_.emplace(w, verdict);
  return verdict;
}

std::vector<bool> LStar::rowOf(const Word& s) {
  std::vector<bool> row(e_.size());
  for (std::size_t i = 0; i < e_.size(); ++i) {
    Word w = s;
    w.insert(w.end(), e_[i].begin(), e_[i].end());
    row[i] = member(w);
  }
  return row;
}

void LStar::close() {
  bool changed = true;
  while (changed) {
    changed = false;
    // Rows of the current S (recomputed each pass: E may have grown).
    std::vector<std::vector<bool>> sRows;
    sRows.reserve(s_.size());
    for (const Word& s : s_) sRows.push_back(rowOf(s));
    for (std::size_t i = 0; i < s_.size() && !changed; ++i) {
      for (std::size_t a = 0; a < alphabet_ && !changed; ++a) {
        Word sa = s_[i];
        sa.push_back(a);
        if (std::find(s_.begin(), s_.end(), sa) != s_.end()) continue;
        const std::vector<bool> row = rowOf(sa);
        if (std::find(sRows.begin(), sRows.end(), row) == sRows.end()) {
          s_.push_back(std::move(sa));
          changed = true;
        }
      }
    }
  }
}

bool LStar::makeConsistent() {
  for (std::size_t i = 0; i < s_.size(); ++i) {
    const std::vector<bool> rowI = rowOf(s_[i]);
    for (std::size_t j = i + 1; j < s_.size(); ++j) {
      if (rowOf(s_[j]) != rowI) continue;
      for (std::size_t a = 0; a < alphabet_; ++a) {
        Word ia = s_[i];
        ia.push_back(a);
        Word ja = s_[j];
        ja.push_back(a);
        const std::vector<bool> rowIa = rowOf(ia);
        const std::vector<bool> rowJa = rowOf(ja);
        if (rowIa == rowJa) continue;
        // Find the separating suffix and prepend the letter to E.
        for (std::size_t e = 0; e < e_.size(); ++e) {
          if (rowIa[e] == rowJa[e]) continue;
          Word suffix;
          suffix.push_back(a);
          suffix.insert(suffix.end(), e_[e].begin(), e_[e].end());
          if (std::find(e_.begin(), e_.end(), suffix) == e_.end()) {
            e_.push_back(std::move(suffix));
            return false;
          }
        }
      }
    }
  }
  return true;
}

Dfa LStar::conjecture() {
  for (;;) {
    close();
    if (makeConsistent()) break;
  }
  // Distinct rows of S become states; ε's row is the initial state.
  std::vector<std::vector<bool>> stateRows;
  std::vector<std::size_t> stateOf(s_.size());
  for (std::size_t i = 0; i < s_.size(); ++i) {
    const std::vector<bool> row = rowOf(s_[i]);
    auto it = std::find(stateRows.begin(), stateRows.end(), row);
    if (it == stateRows.end()) {
      stateOf[i] = stateRows.size();
      stateRows.push_back(row);
    } else {
      stateOf[i] = static_cast<std::size_t>(it - stateRows.begin());
    }
  }
  Dfa dfa;
  dfa.states = stateRows.size();
  dfa.stride = alphabet_;
  dfa.accepting.assign(dfa.states, false);
  dfa.delta.assign(dfa.states * alphabet_, 0);
  std::vector<bool> filled(dfa.states, false);
  for (std::size_t i = 0; i < s_.size(); ++i) {
    const std::size_t q = stateOf[i];
    dfa.accepting[q] = stateRows[q][0];  // column ε
    if (filled[q]) continue;
    filled[q] = true;
    for (std::size_t a = 0; a < alphabet_; ++a) {
      Word sa = s_[i];
      sa.push_back(a);
      const std::vector<bool> row = rowOf(sa);
      auto it = std::find(stateRows.begin(), stateRows.end(), row);
      if (it == stateRows.end()) {
        // close() guarantees every extension row matches an S-row.
        throw Error("L*: observation table not closed at conjecture time");
      }
      dfa.delta[q * alphabet_ + a] =
          static_cast<std::size_t>(it - stateRows.begin());
    }
  }
  // The DFA's initial state must be ε's row (index 0 by construction:
  // s_[0] = ε is processed first).
  return dfa;
}

void LStar::addCounterexample(const Word& w) {
  for (std::size_t len = 1; len <= w.size(); ++len) {
    Word prefix(w.begin(), w.begin() + static_cast<std::ptrdiff_t>(len));
    if (std::find(s_.begin(), s_.end(), prefix) == s_.end()) {
      s_.push_back(std::move(prefix));
    }
  }
}

}  // namespace cmc::agr
