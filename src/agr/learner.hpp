// Angluin-style L* over interface letters (agr layer).
//
// Classic observation-table L*: access strings S (prefix-closed), suffixes
// E (containing ε), and a table T(s·e) filled by membership queries.  The
// table is made closed (every one-letter extension of an S-row matches
// some S-row) and consistent (equal S-rows stay equal under every letter
// extension) before each conjecture; counterexamples are processed by
// adding all their prefixes to S.
//
// The teacher here is just a callback: the service-backed oracle
// (agr/teacher.hpp) decomposes words into per-pair obligations and
// memoizes, so repeated table fills cost one service query per *distinct*
// interface step, and warm reruns are pure obligation-cache hits.
#pragma once

#include <cstddef>
#include <functional>
#include <map>
#include <vector>

#include "agr/assumption.hpp"

namespace cmc::agr {

using Word = std::vector<std::size_t>;

class LStar {
 public:
  using MembershipFn = std::function<bool(const Word&)>;

  LStar(std::size_t alphabet, MembershipFn member);

  /// Close + make consistent, then conjecture the DFA of the current
  /// table.  State 0 is the row of ε.
  Dfa conjecture();

  /// Process a counterexample word (conjecture and target language
  /// disagree on it): all prefixes join S, guaranteeing the next
  /// conjecture distinguishes at least one new row or fixes the word.
  void addCounterexample(const Word& w);

  /// Membership queries issued against the teacher (cache misses of the
  /// learner's own memo).
  std::size_t queries() const noexcept { return queries_; }

 private:
  bool member(const Word& w);
  std::vector<bool> rowOf(const Word& s);
  void close();
  bool makeConsistent();

  std::size_t alphabet_;
  MembershipFn member_;
  std::map<Word, bool> memo_;
  std::size_t queries_ = 0;

  std::vector<Word> s_;  ///< access strings, s_[0] = ε
  std::vector<Word> e_;  ///< suffixes, e_[0] = ε
};

}  // namespace cmc::agr
