// The service-backed teacher for assume-guarantee learning (agr layer).
//
// Every oracle query is answered by composing the G1 components with a
// synthetic environment module (agr/assumption.hpp) and submitting the
// result to the ordinary VerificationService as a factory job.  A query is
// therefore a first-class obligation: it is elaborated into a snapshot,
// fingerprinted (with the assumption digest folded in), served from the
// obligation cache on a warm rerun, budgeted, cancellable, and eligible
// for engine racing — the learner gets the whole service stack for free.
//
// Query kinds:
//  - pairSafe(a, b): does P survive one environment step a→b from any
//    I-state?  Composes G1 with the single-step module; memoized, so L*'s
//    repeated table fills cost one service query per *distinct* pair.
//  - baseSafe(): do G1's own moves (and the global stutter) preserve P?
//    Checked once up front; a failure here is independent of any
//    assumption.
//  - member(w): the L* membership oracle — all adjacent pairs of w safe.
//  - premise1(A): ⟨A⟩ G1 ⟨P⟩ — the real soundness gate, exercising the
//    assumption→SMV bridge.
//
// Budget-exhausted queries (Timeout/MemoryOut/Inconclusive/...) return
// Undecided; the engine then abandons learning for this spec and falls
// back to the direct composed check, so a starved oracle can never turn
// into a wrong verdict.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "agr/assumption.hpp"
#include "agr/learner.hpp"
#include "service/scheduler.hpp"

namespace cmc::agr {

/// A composed spec in the shape the learning rules handle: a conjunction
/// of propositional conjuncts and one-step conjuncts p ⇒ AX q, under a
/// restriction with propositional init and no (nontrivial) fairness.
struct LearnableSpec {
  ctl::Spec spec;       ///< the original spec (name, r, f)
  std::size_t owner;    ///< index of the module that declared it
  /// The p ⇒ AX q conjuncts, as (p, q).
  std::vector<std::pair<ctl::FormulaPtr, ctl::FormulaPtr>> steps;
  /// The propositional conjuncts.
  std::vector<ctl::FormulaPtr> props;
};

/// Decompose `spec` into the learnable shape, or nullopt (with a reason)
/// when learning must refuse: non-propositional init, nontrivial fairness,
/// or a conjunct that is neither propositional nor p ⇒ AX q.
std::optional<LearnableSpec> decomposeLearnable(const ctl::Spec& spec,
                                                std::size_t owner,
                                                std::string* reason);

enum class QueryVerdict { Safe, Unsafe, Undecided };

class Teacher {
 public:
  struct Stats {
    std::size_t membershipQueries = 0;  ///< words asked by the learner
    std::size_t pairQueries = 0;        ///< distinct pair-safety service jobs
    std::size_t candidateQueries = 0;   ///< premise-1 service jobs
    std::uint64_t cacheHits = 0;
    std::uint64_t cacheMisses = 0;
    std::uint64_t cacheInserts = 0;
  };

  /// `modules` is the whole parsed program (factory lambdas share it);
  /// `g1` indexes the component group carrying the spec; `options` is the
  /// job configuration queries run under (compose and learn already
  /// cleared by the engine).  `trace` may be null.
  Teacher(service::VerificationService& svc,
          std::shared_ptr<const std::vector<smv::Module>> modules,
          std::vector<std::size_t> g1, Alphabet alphabet, LearnableSpec spec,
          service::JobOptions options, std::string jobName,
          service::RunTrace* trace);

  /// G1's own moves and the global stutter preserve P from every I-state.
  QueryVerdict baseSafe();
  /// P survives the single environment step a→b (memoized).
  QueryVerdict pairSafe(std::size_t a, std::size_t b);
  /// L* membership: every adjacent pair of `w` is safe.
  QueryVerdict member(const Word& w);
  /// ⟨A⟩ G1 ⟨P⟩ through the assumption→SMV bridge.
  QueryVerdict premise1(const Assumption& assumption);

  const Stats& stats() const noexcept { return stats_; }
  const Alphabet& alphabet() const noexcept { return alphabet_; }
  const LearnableSpec& spec() const noexcept { return spec_; }

 private:
  /// Run one factory query: G1 (+ optional environment module) composed,
  /// checked against the spec under r = (I, {}).
  service::Verdict runQuery(const std::string& kind,
                            std::optional<smv::Module> environment,
                            const std::string& digest);

  service::VerificationService& svc_;
  std::shared_ptr<const std::vector<smv::Module>> modules_;
  std::vector<std::size_t> g1_;
  Alphabet alphabet_;
  LearnableSpec spec_;
  service::JobOptions options_;
  std::string jobName_;
  service::RunTrace* trace_;

  Stats stats_;
  std::map<std::pair<std::size_t, std::size_t>, QueryVerdict> pairMemo_;
  std::optional<QueryVerdict> baseMemo_;
};

}  // namespace cmc::agr
