// Learned assumptions and the assumption→SMV bridge (agr layer).
//
// The learner produces a deterministic automaton over interface letters
// whose language is (an approximation of) the *weakest safe environment*:
// words all of whose adjacent letter pairs are safe interface steps.  Under
// the paper's restriction semantics M ⊨_(I,F) f quantifies over EVERY
// I-state — there is no reachability restriction — so for the one-step
// property shapes the rules handle (p ⇒ AX q and propositional conjuncts)
// an assumption's memory cannot influence any premise: what matters is
// exactly the *step relation* R ⊆ Σ_I × Σ_I it allows.  We therefore carry
// both: the DFA (what L* actually learned, reported as assumption size) and
// the step relation extracted from it (what the premises are checked
// against).  docs/THEORY.md ("Learned assumptions") gives the soundness
// argument.
//
// The bridge reifies R as a synthetic smv::Module over the interface
// variables whose TRANS is the disjunction of allowed steps.  Premise-1
// queries compose this module with the G1 components through the ordinary
// elaboration pipeline, so learned-assumption obligations reuse snapshots,
// fingerprints, both engines, budgets, and the obligation cache unchanged.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "agr/alphabet.hpp"

namespace cmc::agr {

/// A deterministic finite automaton over letter indices [0, alphabet).
/// State 0 is initial; `delta` is row-major (states × alphabet).
struct Dfa {
  std::size_t states = 0;
  std::vector<bool> accepting;
  std::vector<std::size_t> delta;

  std::size_t next(std::size_t state, std::size_t letter) const {
    return delta[state * stride + letter];
  }
  std::size_t stride = 0;  ///< alphabet size used to build delta
};

/// A learned assumption: the DFA plus the interface-step relation the
/// premises are checked against.
struct Assumption {
  Alphabet alphabet;
  Dfa dfa;
  /// allowed[a * |Σ| + b] — the step a→b is permitted.
  std::vector<bool> allowed;

  std::size_t letters() const noexcept { return alphabet.size(); }
  bool allows(std::size_t a, std::size_t b) const {
    return allowed[a * letters() + b];
  }
  /// Number of allowed pairs (reported as relation_size).
  std::size_t relationSize() const;
  /// True when every step is allowed (the initial, weakest conjecture).
  bool allowsAll() const;

  /// Content digest over the alphabet and the step relation — folded into
  /// the obligation fingerprint of every premise query carrying this
  /// assumption, so two different learned automata can never collide in
  /// the obligation cache.
  std::string digest() const;

  /// The assumption as a synthetic SMV module over the interface
  /// variables: TRANS = ∨ allowed (a, b) of (Σ_I = a ∧ next(Σ_I) = b).
  /// An all-allowing assumption emits no TRANS constraint (free next
  /// values — the same relation, cheaper to elaborate).  Must not be
  /// called on an empty interface (callers skip the module entirely).
  smv::Module toModule(const std::string& name) const;
};

/// Extract the step relation of `dfa`: a→b is allowed iff the two-letter
/// word "ab" is accepted (init --a--> qa --b--> qb with qa, qb accepting).
Assumption assumptionFromDfa(const Alphabet& alphabet, const Dfa& dfa);

/// A single-step environment module: TRANS = (Σ_I = a ∧ next(Σ_I) = b).
/// Composed with the G1 components it realizes exactly one interface step —
/// the membership oracle's per-pair query.
smv::Module stepModule(const Alphabet& alphabet, std::size_t a, std::size_t b,
                       const std::string& name);

}  // namespace cmc::agr
