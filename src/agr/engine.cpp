#include "agr/engine.hpp"

#include <algorithm>
#include <memory>
#include <optional>
#include <set>
#include <utility>

#include "agr/search.hpp"
#include "smv/parser.hpp"
#include "symbolic/composition.hpp"
#include "symbolic/prop.hpp"
#include "symbolic/trace.hpp"
#include "util/timer.hpp"

namespace cmc::agr {

namespace {

/// Thrown through the L* callbacks when a membership query exhausted its
/// budget — learning for this split is abandoned, never guessed.
struct UndecidedQuery {};

std::string joinNames(const std::vector<smv::Module>& mods,
                      const std::vector<std::size_t>& group) {
  std::string out;
  for (std::size_t i : group) {
    if (!out.empty()) out += '+';
    out += mods[i].name;
  }
  return out;
}

// ---- In-process symbolic analysis of one split -----------------------------
//
// Premise 2 (⟨true⟩ G2 ⟨A⟩) and counterexample attribution are relational
// facts about step relations under interleaving — CTL over the composition
// cannot express "every G2 interface step is allowed by R", so these run
// directly on the BDDs in the engine's own context.  Everything else goes
// through the service.
class SplitAnalyzer {
 public:
  SplitAnalyzer(symbolic::Context& ctx,
                const std::vector<symbolic::SymbolicSystem>& closed,
                const Split& split, const Alphabet& alpha,
                const LearnableSpec& lspec)
      : ctx_(ctx), alpha_(alpha), lspec_(lspec) {
    for (const InterfaceVar& v : alpha.vars) {
      ifaceIds_.push_back(ctx.varId(v.name));
    }

    // Cube of every non-interface bit of the whole context, both columns:
    // quantifying it out projects any relation onto interface steps.
    std::vector<std::uint32_t> bddVars;
    const std::set<symbolic::VarId> iface(ifaceIds_.begin(), ifaceIds_.end());
    for (symbolic::VarId v = 0;
         v < static_cast<symbolic::VarId>(ctx.varCount()); ++v) {
      if (iface.count(v) != 0) continue;
      for (std::uint32_t bit : ctx.variable(v).bits) {
        bddVars.push_back(symbolic::Context::bddVarOf(bit, false));
        bddVars.push_back(symbolic::Context::bddVarOf(bit, true));
      }
    }
    nonIfaceCube_ = ctx.mgr().cube(bddVars);

    // Letter predicates in both columns.
    const std::size_t n = alpha.size();
    cur_.reserve(n);
    nxt_.reserve(n);
    for (std::size_t letter = 0; letter < n; ++letter) {
      cur_.push_back(letterBdd(letter, false));
      nxt_.push_back(letterBdd(letter, true));
    }

    // proj(T_G2): the environment's interface-step relation (includes the
    // stutter diagonal — the composition is reflexive).
    std::vector<symbolic::SymbolicSystem> g2parts;
    g2parts.reserve(split.g2.size());
    for (std::size_t i : split.g2) g2parts.push_back(closed[i]);
    s2_ = symbolic::composeAll(g2parts);
    projT2_ = ctx.mgr().exists(s2_.transBdd(), nonIfaceCube_);
    idIface_ = ctx.frameAll(ifaceIds_);

    std::vector<symbolic::SymbolicSystem> g1parts;
    g1parts.reserve(split.g1.size());
    for (std::size_t i : split.g1) g1parts.push_back(closed[i]);
    s1_ = symbolic::composeAll(g1parts);
    std::vector<symbolic::VarId> g1NonIface;
    for (symbolic::VarId v : s1_.vars) {
      if (iface.count(v) == 0) g1NonIface.push_back(v);
    }
    frameG1Rest_ = ctx.frameAll(g1NonIface);
  }

  /// The step relation R of an assumption as a BDD over interface bits.
  bdd::Bdd relationBdd(const Assumption& a) const {
    bdd::Bdd r = ctx_.mgr().bddFalse();
    const std::size_t n = alpha_.size();
    for (std::size_t x = 0; x < n; ++x) {
      for (std::size_t y = 0; y < n; ++y) {
        if (a.allows(x, y)) r = r | (cur_[x] & nxt_[y]);
      }
    }
    return r;
  }

  /// Premise 2 as containment: proj(T_G2) ⊆ R ∨ Id(Σ_I).  Returns a
  /// violating interface step when the conjecture forbids something the
  /// environment does.
  std::optional<std::pair<std::size_t, std::size_t>> premise2Violation(
      const bdd::Bdd& r) const {
    return decodePair(projT2_.diff(r | idIface_));
  }

  /// Can the environment (or the global stutter) actually take step a→b?
  /// Distinguishes real violations from spurious assumption steps.
  bool environmentCanStep(std::size_t a, std::size_t b) const {
    return !(projT2_ & cur_[a] & nxt_[b]).isFalse();
  }

  /// When premise 1 fails: the interface step of R whose environment move
  /// breaks a step conjunct from an I-state of G1.  (G1's own moves and
  /// props are covered by base safety, so a genuine premise-1 failure is
  /// always attributable to an environment step.)
  std::optional<std::pair<std::size_t, std::size_t>> blamePair(
      const bdd::Bdd& r) const {
    bdd::Bdd initB = lspec_.spec.r.init != nullptr
                         ? symbolic::propositionalBdd(ctx_, lspec_.spec.r.init)
                         : ctx_.mgr().bddTrue();
    initB = initB & s1_.stateDomain();
    // The environment-move track of G1 ∘ A: R on the interface, frame on
    // the rest of Σ(G1).
    const bdd::Bdd envMove = r & frameG1Rest_;
    const std::uint32_t swap = ctx_.swapPermutation();
    for (const auto& [p, q] : lspec_.steps) {
      const bdd::Bdd pB = symbolic::propositionalBdd(ctx_, p);
      const bdd::Bdd qB = symbolic::propositionalBdd(ctx_, q);
      const bdd::Bdd notQNext =
          ctx_.mgr().permute(s1_.stateDomain() & !qB, swap);
      const bdd::Bdd viol = initB & pB & envMove & notQNext;
      if (viol.isFalse()) continue;
      return decodePair(ctx_.mgr().exists(viol, nonIfaceCube_));
    }
    return std::nullopt;
  }

 private:
  bdd::Bdd letterBdd(std::size_t letter, bool next) const {
    const std::vector<std::size_t> digits = alpha_.decode(letter);
    bdd::Bdd acc = ctx_.mgr().bddTrue();
    for (std::size_t i = 0; i < ifaceIds_.size(); ++i) {
      acc = acc & ctx_.varEqIndex(ifaceIds_[i], digits[i], next);
    }
    return acc;
  }

  std::optional<std::pair<std::size_t, std::size_t>> decodePair(
      const bdd::Bdd& pairs) const {
    if (pairs.isFalse()) return std::nullopt;
    const std::size_t n = alpha_.size();
    for (std::size_t a = 0; a < n; ++a) {
      const bdd::Bdd va = pairs & cur_[a];
      if (va.isFalse()) continue;
      for (std::size_t b = 0; b < n; ++b) {
        if (!(va & nxt_[b]).isFalse()) return std::make_pair(a, b);
      }
    }
    return std::nullopt;
  }

  symbolic::Context& ctx_;
  const Alphabet& alpha_;
  const LearnableSpec& lspec_;
  std::vector<symbolic::VarId> ifaceIds_;
  bdd::Bdd nonIfaceCube_;
  std::vector<bdd::Bdd> cur_;
  std::vector<bdd::Bdd> nxt_;
  symbolic::SymbolicSystem s2_;
  bdd::Bdd projT2_;
  bdd::Bdd idIface_;
  symbolic::SymbolicSystem s1_;
  bdd::Bdd frameG1Rest_;
};

// ---- Exact one-step decision on the full composition -----------------------
//
// Real violations are decided (and traced) on the full composition, so a
// learned Fails carries the same kind of concrete counterexample a direct
// check would produce.  For the learnable shapes (props and p ⇒ AX q under
// all-I-states semantics) this evaluation is exact.
class DirectDecider {
 public:
  DirectDecider(symbolic::Context& ctx,
                const std::vector<symbolic::SymbolicSystem>& closed)
      : ctx_(ctx), closed_(closed) {}

  std::pair<service::Verdict, std::string> decide(const LearnableSpec& ls) {
    if (full_ == nullptr) {
      full_ = std::make_unique<symbolic::SymbolicSystem>(
          symbolic::composeAll(closed_));
    }
    bdd::Bdd initB = ls.spec.r.init != nullptr
                         ? symbolic::propositionalBdd(ctx_, ls.spec.r.init)
                         : ctx_.mgr().bddTrue();
    initB = initB & full_->stateDomain();
    symbolic::TraceBuilder tb(*full_);
    for (const ctl::FormulaPtr& c : ls.props) {
      const bdd::Bdd viol = initB.diff(symbolic::propositionalBdd(ctx_, c));
      if (viol.isFalse()) continue;
      symbolic::Trace t;
      t.states.push_back(tb.pickState(viol));
      return {service::Verdict::Fails, t.toString()};
    }
    for (const auto& [p, q] : ls.steps) {
      const bdd::Bdd notQ =
          full_->stateDomain().diff(symbolic::propositionalBdd(ctx_, q));
      const bdd::Bdd viol =
          initB & symbolic::propositionalBdd(ctx_, p) & tb.preimage(notQ);
      if (viol.isFalse()) continue;
      symbolic::Trace t;
      t.states.push_back(tb.pickState(viol));
      const bdd::Bdd succ = tb.image(tb.stateBdd(t.states.front())) & notQ;
      t.states.push_back(tb.pickState(succ));
      return {service::Verdict::Fails, t.toString()};
    }
    return {service::Verdict::Holds, ""};
  }

 private:
  symbolic::Context& ctx_;
  const std::vector<symbolic::SymbolicSystem>& closed_;
  std::unique_ptr<symbolic::SymbolicSystem> full_;
};

// ---- Per-spec learning ----------------------------------------------------

struct LearnSpecResult {
  bool decided = false;
  service::Verdict verdict = service::Verdict::Error;
  std::string counterexample;
  std::string fallbackReason;

  std::size_t assumptionStates = 0;
  std::size_t relationSize = 0;
  std::size_t alphabetLetters = 0;
  std::size_t rounds = 0;
  std::size_t splitsTried = 0;
  std::string interfaceVars;
  std::string partitionG1;
  std::string partitionG2;
  Teacher::Stats stats;
};

void foldStats(Teacher::Stats& into, const Teacher::Stats& from) {
  into.membershipQueries += from.membershipQueries;
  into.pairQueries += from.pairQueries;
  into.candidateQueries += from.candidateQueries;
  into.cacheHits += from.cacheHits;
  into.cacheMisses += from.cacheMisses;
  into.cacheInserts += from.cacheInserts;
}

/// One split's learning loop.  Returns true when the spec was decided
/// (result filled in); false leaves `lastReason` explaining the retreat.
bool tryLearnSplit(Teacher& teacher, const Split& split,
                   symbolic::Context& ctx,
                   const std::vector<symbolic::SymbolicSystem>& closed,
                   const LearnableSpec& lspec, const LearnOptions& lopts,
                   DirectDecider& direct, LearnSpecResult& res,
                   std::string* lastReason) {
  const Alphabet& alpha = teacher.alphabet();

  const auto decideViolation = [&](const Dfa* dfa,
                                   const Assumption* a) -> bool {
    const auto [v, cex] = direct.decide(lspec);
    if (v != service::Verdict::Fails) {
      // The oracle said some step is unsafe but the full composition has
      // no violation — never report a learned verdict we cannot ground.
      *lastReason = "counterexample analysis disagrees with the direct "
                    "decision; refusing the learned verdict";
      return false;
    }
    res.decided = true;
    res.verdict = service::Verdict::Fails;
    res.counterexample = cex;
    if (dfa != nullptr) res.assumptionStates = dfa->states;
    if (a != nullptr) res.relationSize = a->relationSize();
    return true;
  };

  // Base safety — G1's own moves and the stutter — is independent of any
  // assumption; its failure is a real violation, its budget exhaustion
  // dooms every later query.
  switch (teacher.baseSafe()) {
    case QueryVerdict::Undecided:
      *lastReason = "base-safety query exhausted its budget";
      return false;
    case QueryVerdict::Unsafe:
      return decideViolation(nullptr, nullptr);
    case QueryVerdict::Safe:
      break;
  }

  if (alpha.vars.empty()) {
    // No shared variables: the environment cannot move, so base safety
    // alone discharges the composed spec (the trivial assumption).
    res.decided = true;
    res.verdict = service::Verdict::Holds;
    res.assumptionStates = 1;
    res.relationSize = 0;
    return true;
  }

  LStar lstar(alpha.size(), [&teacher](const Word& w) {
    switch (teacher.member(w)) {
      case QueryVerdict::Safe:
        return true;
      case QueryVerdict::Unsafe:
        return false;
      default:
        throw UndecidedQuery{};
    }
  });

  SplitAnalyzer analyzer(ctx, closed, split, alpha, lspec);

  try {
    for (std::size_t round = 1; round <= lopts.maxRounds; ++round) {
      res.rounds = round;
      const Dfa dfa = lstar.conjecture();
      const Assumption assumption = assumptionFromDfa(alpha, dfa);
      const bdd::Bdd r = analyzer.relationBdd(assumption);

      // Premise 2: every environment interface step is allowed by R.
      if (const auto viol = analyzer.premise2Violation(r)) {
        const auto [a, b] = *viol;
        switch (teacher.pairSafe(a, b)) {
          case QueryVerdict::Safe:
            // The conjecture is too strong: the step is safe, admit it.
            lstar.addCounterexample({a, b});
            continue;
          case QueryVerdict::Unsafe:
            // The environment takes a step that breaks P: real violation.
            return decideViolation(&dfa, &assumption);
          default:
            *lastReason = "interface-step query exhausted its budget";
            return false;
        }
      }

      // Premise 1 through the service: ⟨A⟩ G1 ⟨P⟩.
      switch (teacher.premise1(assumption)) {
        case QueryVerdict::Safe:
          res.decided = true;
          res.verdict = service::Verdict::Holds;
          res.assumptionStates = dfa.states;
          res.relationSize = assumption.relationSize();
          return true;
        case QueryVerdict::Undecided:
          *lastReason = "premise-1 query exhausted its budget";
          return false;
        case QueryVerdict::Unsafe:
          break;
      }
      const auto blame = analyzer.blamePair(r);
      if (!blame.has_value()) {
        *lastReason = "premise-1 failure not attributable to an interface "
                      "step";
        return false;
      }
      const auto [a, b] = *blame;
      switch (teacher.pairSafe(a, b)) {
        case QueryVerdict::Safe:
          *lastReason = "oracle inconsistency on interface step " +
                        alpha.letterText(a) + " -> " + alpha.letterText(b);
          return false;
        case QueryVerdict::Undecided:
          *lastReason = "interface-step query exhausted its budget";
          return false;
        case QueryVerdict::Unsafe:
          if (analyzer.environmentCanStep(a, b)) {
            return decideViolation(&dfa, &assumption);
          }
          // The conjecture is too weak: it admits an unsafe step the
          // environment never takes — reject it.
          lstar.addCounterexample({a, b});
          break;
      }
    }
  } catch (const UndecidedQuery&) {
    *lastReason = "membership query exhausted its budget";
    return false;
  }
  *lastReason = "learning did not converge within " +
                std::to_string(lopts.maxRounds) + " rounds";
  return false;
}

LearnSpecResult learnForSpec(
    service::VerificationService& svc, const service::VerificationJob& job,
    const std::shared_ptr<const std::vector<smv::Module>>& parsed,
    symbolic::Context& ctx,
    const std::vector<symbolic::SymbolicSystem>& closed, std::size_t owner,
    const ctl::Spec& spec, const LearnOptions& lopts, DirectDecider& direct,
    service::RunTrace* trace) {
  LearnSpecResult res;
  std::string reason;
  const auto lspec = decomposeLearnable(spec, owner, &reason);
  if (!lspec.has_value()) {
    res.fallbackReason = reason;
    return res;
  }

  std::set<std::string> needed = ctl::collectVariables(spec.f);
  if (spec.r.init != nullptr) {
    const std::set<std::string> iv = ctl::collectVariables(spec.r.init);
    needed.insert(iv.begin(), iv.end());
  }
  const std::vector<Split> splits =
      enumerateSplits(*parsed, needed, lopts.alphabetCap, lopts.maxSplits);
  if (splits.empty()) {
    res.fallbackReason =
        "no 2-way decomposition covers the spec's variables within the "
        "interface-alphabet cap";
    return res;
  }

  std::string lastReason = "no split admitted an interface alphabet";
  for (const Split& split : splits) {
    ++res.splitsTried;
    std::string why;
    const auto alpha = buildAlphabet(*parsed, split.g1, split.g2,
                                     lopts.alphabetCap, &why);
    if (!alpha.has_value()) {
      lastReason = why;
      continue;
    }
    res.interfaceVars = alpha->varsText();
    res.alphabetLetters = alpha->vars.empty() ? 0 : alpha->size();
    res.partitionG1 = joinNames(*parsed, split.g1);
    res.partitionG2 = joinNames(*parsed, split.g2);

    Teacher teacher(svc, parsed, split.g1, *alpha, *lspec, job.options,
                    job.name + "/" + spec.name, trace);
    const bool decided = tryLearnSplit(teacher, split, ctx, closed, *lspec,
                                       lopts, direct, res, &lastReason);
    foldStats(res.stats, teacher.stats());
    if (decided) return res;
  }
  res.fallbackReason = lastReason;
  return res;
}

}  // namespace

service::JobReport runLearnedJob(service::VerificationService& svc,
                                 const service::VerificationJob& job,
                                 const LearnOptions& lopts,
                                 service::RunTrace* trace,
                                 service::MetricsRegistry* metrics) {
  // Learning applies to composed text jobs only; everything else passes
  // straight through to the plain service.
  if (job.factory || !job.options.compose) return svc.run(job, trace);

  const auto directRun = [&]() {
    service::VerificationJob direct = job;
    direct.options.learn = false;
    service::JobReport report = svc.run(direct, trace);
    report.options = job.options;
    return report;
  };

  WallTimer timer;
  std::shared_ptr<const std::vector<smv::Module>> parsed;
  try {
    parsed = std::make_shared<const std::vector<smv::Module>>(
        smv::parseProgram(job.smvText));
  } catch (const std::exception&) {
    return directRun();  // let the service report the parse error
  }
  if (parsed->size() < 2) return directRun();

  // The engine's own context: spec enumeration and the in-process
  // premise-2 / attribution analysis.  Query obligations never touch it —
  // they elaborate fresh snapshots inside the service.
  symbolic::Context ctx(1 << 16);
  std::vector<smv::ElaboratedModule> ems;
  try {
    ems = smv::elaborateProgram(ctx, job.smvText);
  } catch (const std::exception&) {
    return directRun();
  }
  std::vector<symbolic::SymbolicSystem> closed;
  closed.reserve(ems.size());
  for (const smv::ElaboratedModule& em : ems) {
    closed.push_back(em.sys);
    symbolic::addReflexive(closed.back());
  }
  DirectDecider direct(ctx, closed);

  // Component obligations run through the plain service first (same ids,
  // caching, and engines as a direct run).
  service::VerificationJob compJob = job;
  compJob.options.compose = false;
  compJob.options.learn = false;
  service::JobReport out = svc.run(compJob, trace);
  out.options = job.options;

  for (std::size_t i = 0; i < ems.size(); ++i) {
    for (const ctl::Spec& spec : ems[i].specs) {
      WallTimer specTimer;
      LearnSpecResult res = learnForSpec(svc, job, parsed, ctx, closed, i,
                                         spec, lopts, direct, trace);
      if (metrics != nullptr) {
        metrics->counter("learn_membership_queries")
            .inc(res.stats.membershipQueries);
        metrics->counter("learn_pair_queries").inc(res.stats.pairQueries);
        metrics->counter("learn_candidate_queries")
            .inc(res.stats.candidateQueries);
        metrics->counter(res.decided ? "learn_specs_learned"
                                     : "learn_specs_fallback")
            .inc();
      }
      out.cacheHits += res.stats.cacheHits;
      out.cacheMisses += res.stats.cacheMisses;
      out.cacheInserts += res.stats.cacheInserts;

      service::ObligationOutcome o;
      if (res.decided) {
        o.id = "composed/" + spec.name;
        o.target = "composed";
        o.spec = spec.name;
        o.specText = ctl::toString(spec.f);
        o.verdict = res.verdict;
        o.verdictSource = "learned";
        o.rule = "assume-guarantee (learned)";
        o.counterexample = res.counterexample;
        o.seconds = specTimer.seconds();
        o.learnedJson =
            service::JsonObject()
                .putUint("assumption_states", res.assumptionStates)
                .putUint("relation_size", res.relationSize)
                .putUint("alphabet_letters", res.alphabetLetters)
                .put("interface", res.interfaceVars)
                .put("partition_g1", res.partitionG1)
                .put("partition_g2", res.partitionG2)
                .putUint("membership_queries", res.stats.membershipQueries)
                .putUint("pair_queries", res.stats.pairQueries)
                .putUint("candidate_queries", res.stats.candidateQueries)
                .putUint("rounds", res.rounds)
                .putUint("splits_tried", res.splitsTried)
                .str();
      } else {
        // Fall back to the direct composed check of exactly this spec.
        service::VerificationJob fb = job;
        fb.options.learn = false;
        fb.only = "composed/" + spec.name;
        const service::JobReport fr = svc.run(fb, trace);
        out.cacheHits += fr.cacheHits;
        out.cacheMisses += fr.cacheMisses;
        out.cacheInserts += fr.cacheInserts;
        out.journalHits += fr.journalHits;
        const auto it = std::find_if(
            fr.obligations.begin(), fr.obligations.end(),
            [&](const service::ObligationOutcome& ob) {
              return ob.id == fb.only;
            });
        if (it != fr.obligations.end()) {
          o = *it;
        } else {
          o.id = fb.only;
          o.target = "composed";
          o.spec = spec.name;
          o.specText = ctl::toString(spec.f);
          o.verdict = service::Verdict::Error;
          o.error = "fallback run did not produce the composed obligation";
        }
        o.learnedJson = service::JsonObject()
                            .put("fallback_reason", res.fallbackReason)
                            .str();
      }
      out.verdict = service::worseVerdict(out.verdict, o.verdict);
      out.obligations.push_back(std::move(o));
    }
  }
  out.wallSeconds = timer.seconds();
  return out;
}

}  // namespace cmc::agr
