#include "agr/teacher.hpp"

#include <utility>

#include "comp/classify.hpp"
#include "symbolic/composition.hpp"

namespace cmc::agr {

namespace {

bool fairnessTrivial(const ctl::Restriction& r) {
  for (const ctl::FormulaPtr& f : r.fairness) {
    if (f == nullptr || f->op() != ctl::Op::True) return false;
  }
  return true;
}

}  // namespace

std::optional<LearnableSpec> decomposeLearnable(const ctl::Spec& spec,
                                                std::size_t owner,
                                                std::string* reason) {
  if (!fairnessTrivial(spec.r)) {
    if (reason != nullptr) {
      *reason = "restriction carries nontrivial fairness";
    }
    return std::nullopt;
  }
  if (spec.r.init != nullptr && !ctl::isPropositional(spec.r.init)) {
    if (reason != nullptr) {
      *reason = "restriction init is not propositional";
    }
    return std::nullopt;
  }
  LearnableSpec out;
  out.spec = spec;
  out.owner = owner;
  for (const ctl::FormulaPtr& c : comp::conjuncts(spec.f)) {
    ctl::FormulaPtr p;
    ctl::FormulaPtr q;
    if (comp::matchImpliesAX(c, &p, &q)) {
      out.steps.emplace_back(std::move(p), std::move(q));
    } else if (ctl::isPropositional(c)) {
      out.props.push_back(c);
    } else {
      if (reason != nullptr) {
        *reason = "conjunct is neither propositional nor p => AX q: " +
                  ctl::toString(c);
      }
      return std::nullopt;
    }
  }
  return out;
}

Teacher::Teacher(service::VerificationService& svc,
                 std::shared_ptr<const std::vector<smv::Module>> modules,
                 std::vector<std::size_t> g1, Alphabet alphabet,
                 LearnableSpec spec, service::JobOptions options,
                 std::string jobName, service::RunTrace* trace)
    : svc_(svc),
      modules_(std::move(modules)),
      g1_(std::move(g1)),
      alphabet_(std::move(alphabet)),
      spec_(std::move(spec)),
      options_(std::move(options)),
      jobName_(std::move(jobName)),
      trace_(trace) {
  // Query jobs are single-system factory jobs; a composed pass over them
  // would be meaningless, and a nested learn pass would recurse.
  options_.compose = false;
  options_.learn = false;
}

service::Verdict Teacher::runQuery(const std::string& kind,
                                   std::optional<smv::Module> environment,
                                   const std::string& digest) {
  service::VerificationJob job;
  job.name = jobName_ + "#" + kind;
  job.options = options_;
  job.options.assumptionDigest = digest;

  // Everything the factory touches is captured by value: it runs on
  // service worker threads, possibly several times (quarantine retries).
  auto mods = modules_;
  auto g1 = g1_;
  auto env = std::make_shared<const std::optional<smv::Module>>(
      std::move(environment));
  ctl::Spec querySpec;
  querySpec.name = spec_.spec.name;
  querySpec.r.init = spec_.spec.r.init;
  querySpec.f = spec_.spec.f;
  job.factory = [mods, g1, env,
                 querySpec](symbolic::Context& ctx) {
    // Reflexive-closed components folded with ∘ — the same construction
    // the scheduler uses for composed obligations, so verdicts line up.
    std::vector<symbolic::SymbolicSystem> parts;
    parts.reserve(g1.size() + 1);
    for (std::size_t i : g1) {
      smv::ElaboratedModule em = smv::elaborate(ctx, (*mods)[i]);
      symbolic::addReflexive(em.sys);
      parts.push_back(std::move(em.sys));
    }
    if (env->has_value()) {
      // The environment module is NOT reflexive-closed: its steps are
      // exactly the assumption's relation; stuttering comes from the
      // composition's global Id.
      smv::ElaboratedModule em = smv::elaborate(ctx, **env);
      parts.push_back(std::move(em.sys));
    }
    smv::ElaboratedModule out;
    out.sys = symbolic::composeAll(parts);
    out.sys.name = "agr";
    out.initFormula = querySpec.r.init;
    out.specs = {querySpec};
    return std::vector<smv::ElaboratedModule>{std::move(out)};
  };

  const service::JobReport report = svc_.run(job, trace_);
  stats_.cacheHits += report.cacheHits;
  stats_.cacheMisses += report.cacheMisses;
  stats_.cacheInserts += report.cacheInserts;
  if (report.obligations.size() != 1) return service::Verdict::Error;
  return report.obligations.front().verdict;
}

namespace {

QueryVerdict toQueryVerdict(service::Verdict v) {
  switch (v) {
    case service::Verdict::Holds:
      return QueryVerdict::Safe;
    case service::Verdict::Fails:
      return QueryVerdict::Unsafe;
    default:
      return QueryVerdict::Undecided;
  }
}

}  // namespace

QueryVerdict Teacher::baseSafe() {
  if (baseMemo_.has_value()) return *baseMemo_;
  const service::Verdict v = runQuery("base", std::nullopt, "agr-base");
  baseMemo_ = toQueryVerdict(v);
  return *baseMemo_;
}

QueryVerdict Teacher::pairSafe(std::size_t a, std::size_t b) {
  const auto key = std::make_pair(a, b);
  auto it = pairMemo_.find(key);
  if (it != pairMemo_.end()) return it->second;
  ++stats_.pairQueries;
  QueryVerdict qv;
  if (alphabet_.vars.empty()) {
    // Empty interface: the only environment "step" is the stutter, whose
    // safety is part of baseSafe.
    qv = baseSafe();
  } else {
    const std::string kind = "step:" + std::to_string(a) + ">" +
                             std::to_string(b);
    const std::string digest =
        "agr-step:" + alphabet_.varsText() + ":" + alphabet_.letterText(a) +
        ">" + alphabet_.letterText(b);
    qv = toQueryVerdict(
        runQuery(kind, stepModule(alphabet_, a, b, "agr_env"), digest));
  }
  pairMemo_.emplace(key, qv);
  return qv;
}

QueryVerdict Teacher::member(const Word& w) {
  ++stats_.membershipQueries;
  if (w.size() < 2) return QueryVerdict::Safe;
  for (std::size_t i = 0; i + 1 < w.size(); ++i) {
    const QueryVerdict qv = pairSafe(w[i], w[i + 1]);
    if (qv != QueryVerdict::Safe) return qv;
  }
  return QueryVerdict::Safe;
}

QueryVerdict Teacher::premise1(const Assumption& assumption) {
  ++stats_.candidateQueries;
  if (alphabet_.vars.empty()) {
    // No interface: the environment cannot move at all, so ⟨A⟩ G1 ⟨P⟩
    // degenerates to G1 alone (with stutter) — exactly baseSafe's query.
    return toQueryVerdict(runQuery("premise1", std::nullopt,
                                   "agr-assume-empty"));
  }
  // Note an all-allowing assumption still contributes moves (free
  // interface steps); toModule just encodes it without a TRANS constraint.
  return toQueryVerdict(runQuery("premise1",
                                 assumption.toModule("agr_assume"),
                                 assumption.digest()));
}

}  // namespace cmc::agr
