#include "agr/alphabet.hpp"

#include <algorithm>
#include <limits>
#include <map>

#include "util/common.hpp"

namespace cmc::agr {

std::size_t Alphabet::size() const noexcept {
  std::size_t n = 1;
  for (const InterfaceVar& v : vars) n *= v.values.size();
  return n;
}

std::vector<std::size_t> Alphabet::decode(std::size_t letter) const {
  std::vector<std::size_t> digits(vars.size(), 0);
  for (std::size_t i = vars.size(); i-- > 0;) {
    const std::size_t radix = vars[i].values.size();
    digits[i] = letter % radix;
    letter /= radix;
  }
  return digits;
}

std::size_t Alphabet::encode(const std::vector<std::size_t>& digits) const {
  std::size_t letter = 0;
  for (std::size_t i = 0; i < vars.size(); ++i) {
    letter = letter * vars[i].values.size() + digits[i];
  }
  return letter;
}

std::string Alphabet::letterText(std::size_t letter) const {
  if (vars.empty()) return "<empty>";
  const std::vector<std::size_t> digits = decode(letter);
  std::string out;
  for (std::size_t i = 0; i < vars.size(); ++i) {
    if (i > 0) out += ',';
    out += vars[i].name;
    out += '=';
    out += vars[i].values[digits[i]];
  }
  return out;
}

std::string Alphabet::varsText() const {
  std::string out;
  for (std::size_t i = 0; i < vars.size(); ++i) {
    if (i > 0) out += ',';
    out += vars[i].name;
  }
  return out;
}

std::set<std::string> moduleVariables(const smv::Module& mod) {
  std::set<std::string> names;
  for (const smv::VarDecl& v : mod.vars) names.insert(v.name);
  return names;
}

namespace {

/// Declaration of `name` within the group, validating domain agreement
/// across all declaring modules.
const smv::VarDecl* findDecl(const std::vector<smv::Module>& mods,
                             const std::string& name, std::string* reason) {
  const smv::VarDecl* found = nullptr;
  for (const smv::Module& m : mods) {
    const smv::VarDecl* d = m.findVar(name);
    if (d == nullptr) continue;
    if (found == nullptr) {
      found = d;
    } else if (!(found->type == d->type)) {
      if (reason != nullptr) {
        *reason = "shared variable '" + name +
                  "' declared with mismatched domains";
      }
      return nullptr;
    }
  }
  return found;
}

std::set<std::string> groupVariables(const std::vector<smv::Module>& mods,
                                     const std::vector<std::size_t>& group) {
  std::set<std::string> names;
  for (std::size_t i : group) {
    const std::set<std::string> own = moduleVariables(mods.at(i));
    names.insert(own.begin(), own.end());
  }
  return names;
}

std::vector<std::string> sharedVariables(const std::vector<smv::Module>& mods,
                                         const std::vector<std::size_t>& g1,
                                         const std::vector<std::size_t>& g2) {
  const std::set<std::string> v1 = groupVariables(mods, g1);
  const std::set<std::string> v2 = groupVariables(mods, g2);
  std::vector<std::string> shared;
  std::set_intersection(v1.begin(), v1.end(), v2.begin(), v2.end(),
                        std::back_inserter(shared));
  return shared;  // set iteration order: already sorted
}

}  // namespace

std::optional<Alphabet> buildAlphabet(const std::vector<smv::Module>& mods,
                                      const std::vector<std::size_t>& g1,
                                      const std::vector<std::size_t>& g2,
                                      std::size_t cap, std::string* reason) {
  Alphabet alpha;
  std::size_t letters = 1;
  for (const std::string& name : sharedVariables(mods, g1, g2)) {
    std::string why;
    const smv::VarDecl* decl = findDecl(mods, name, &why);
    if (decl == nullptr) {
      if (reason != nullptr) *reason = why;
      return std::nullopt;
    }
    InterfaceVar iv;
    iv.name = decl->name;
    iv.type = decl->type;
    iv.values = decl->type.expandedValues();
    if (iv.values.empty()) {
      if (reason != nullptr) {
        *reason = "interface variable '" + name + "' has an empty domain";
      }
      return std::nullopt;
    }
    if (letters > cap / iv.values.size() ||
        letters * iv.values.size() > cap) {
      if (reason != nullptr) {
        *reason = "interface alphabet exceeds cap of " +
                  std::to_string(cap) + " letters";
      }
      return std::nullopt;
    }
    letters *= iv.values.size();
    alpha.vars.push_back(std::move(iv));
  }
  return alpha;
}

double interfaceProduct(const std::vector<smv::Module>& mods,
                        const std::vector<std::size_t>& g1,
                        const std::vector<std::size_t>& g2) {
  double product = 1.0;
  for (const std::string& name : sharedVariables(mods, g1, g2)) {
    const smv::VarDecl* decl = findDecl(mods, name, nullptr);
    if (decl == nullptr) return std::numeric_limits<double>::infinity();
    product *= static_cast<double>(decl->type.expandedValues().size());
    if (product > 1e18) return 1e18;
  }
  return product;
}

}  // namespace cmc::agr
