// Interface alphabets for assume-guarantee learning (agr layer).
//
// A 2-way partition (G1, G2) of a composed model's components communicates
// through the *interface variables* Σ_I = Σ(G1) ∩ Σ(G2) — in the paper's
// shared-variable style a variable is shared by being declared (with the
// same domain) in several modules.  The learner's alphabet is the set of
// full valuations of Σ_I: one letter per interface state, encoded as a
// mixed-radix index over the declared domains.  A learned assumption then
// speaks about *steps* (pairs of letters), matching the interleaving
// semantics where the environment's influence on a component is exactly an
// interface-state change.
//
// Alphabets are capped: |Σ| = Π |dom(v)| grows multiplicatively, and an
// assumption over thousands of letters is neither learnable in few queries
// nor a win over the monolithic check.  buildAlphabet refuses (with a
// reason) above the cap; the decomposition searcher uses the same product
// as its cost estimate to order candidate splits.
#pragma once

#include <cstddef>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "ctl/formula.hpp"
#include "smv/ast.hpp"

namespace cmc::agr {

/// One interface variable with the domain it was declared with.
struct InterfaceVar {
  std::string name;
  smv::TypeDecl type;
  /// Expanded value list (booleans: {"0", "1"}).
  std::vector<std::string> values;
};

/// The learner's alphabet: all valuations of the interface variables,
/// indexed in mixed radix (last variable varies fastest).
struct Alphabet {
  /// Interface variables in sorted name order (deterministic letters).
  std::vector<InterfaceVar> vars;

  /// Number of letters, Π |values(v)|.  1 for an empty interface (the
  /// single empty valuation).
  std::size_t size() const noexcept;

  /// Per-variable value indices of a letter.
  std::vector<std::size_t> decode(std::size_t letter) const;
  std::size_t encode(const std::vector<std::size_t>& digits) const;

  /// Human-readable rendering, e.g. "r=val,failure=0".
  std::string letterText(std::size_t letter) const;

  /// Sorted interface variable names, comma-joined (for reports).
  std::string varsText() const;
};

/// The variables a module touches: declared names (shared variables are
/// re-declared in every module using them, so declarations are the
/// authoritative per-module alphabet).
std::set<std::string> moduleVariables(const smv::Module& mod);

/// Σ_I between two groups of modules (indices into `mods`), as an ordered
/// alphabet.  Returns nullopt with `reason` set when the alphabet cannot be
/// built: more than `cap` letters, or a shared variable re-declared with
/// mismatched domains.
std::optional<Alphabet> buildAlphabet(const std::vector<smv::Module>& mods,
                                      const std::vector<std::size_t>& g1,
                                      const std::vector<std::size_t>& g2,
                                      std::size_t cap, std::string* reason);

/// Cost estimate used by the decomposition searcher: Π |dom(v)| over the
/// shared variables of the split (without materializing letters); huge
/// products saturate instead of overflowing.
double interfaceProduct(const std::vector<smv::Module>& mods,
                        const std::vector<std::size_t>& g1,
                        const std::vector<std::size_t>& g2);

}  // namespace cmc::agr
