// Decomposition search (agr layer): enumerate 2-way partitions
// G1 ⊎ G2 of the program's modules, keep those where G1 covers the spec's
// variables (and the restriction's), and order them by estimated
// interface-alphabet size — the dominant cost of learning.  The engine
// tries splits in this order and takes the first that learns to a verdict,
// i.e. the cheapest successful decomposition.
#pragma once

#include <cstddef>
#include <set>
#include <string>
#include <vector>

#include "smv/ast.hpp"

namespace cmc::agr {

struct Split {
  std::vector<std::size_t> g1;  ///< spec-side component indices
  std::vector<std::size_t> g2;  ///< environment-side component indices
  double cost = 0.0;            ///< estimated interface-alphabet size
};

/// Enumerate candidate splits of `modules` (all of them when there are at
/// most 12 modules; leave-one-out and take-one otherwise), requiring
/// `needed` ⊆ vars(G1), both sides nonempty, and cost ≤ `alphabetCap`.
/// Sorted by (cost, |G1|) and truncated to `maxSplits`.
std::vector<Split> enumerateSplits(const std::vector<smv::Module>& modules,
                                   const std::set<std::string>& needed,
                                   std::size_t alphabetCap,
                                   std::size_t maxSplits);

}  // namespace cmc::agr
