// The assume-guarantee learning engine (agr layer): the public entry point
// that discharges a job's *composed* obligations through the learned rule
//
//   ⟨A⟩ G1 ⟨P⟩    ∧    ⟨true⟩ G2 ⟨A⟩
//   --------------------------------      (docs/THEORY.md, "Learned
//        ⟨true⟩ G1 ∘ G2 ⟨P⟩               assumptions")
//
// per spec: the decomposition searcher proposes partitions G1 ⊎ G2 ordered
// by interface size, an L* learner infers the assumption A with membership
// queries answered by the service-backed teacher, premise 2 is checked
// in-process as symbolic step-relation containment (proj(T_G2) ⊆ R ∨ Id),
// and premise 1 is a first-class service obligation through the
// assumption→SMV bridge.  Counterexample analysis separates "refine A"
// from "real violation": a violating interface step the environment can
// actually take is decided exactly on the full composition, with a
// concrete trace.
//
// The engine never guesses: whenever a spec's shape, the decomposition
// search, a query budget, or round exhaustion blocks learning, the spec
// falls back to the ordinary direct composed check (svc.run with `only`),
// so a job run with learning enabled always reports the same verdicts as
// a direct run — just derived (and priced) differently.  Component
// obligations are untouched: they run through the plain service first.
#pragma once

#include "agr/teacher.hpp"
#include "service/scheduler.hpp"

namespace cmc::agr {

struct LearnOptions {
  /// Largest interface alphabet (letters) a split may induce; larger
  /// candidates are refused by the searcher.
  std::size_t alphabetCap = 64;
  /// L* refinement rounds per split before giving up on it.
  std::size_t maxRounds = 512;
  /// Candidate decompositions tried per spec (cheapest-interface first).
  std::size_t maxSplits = 8;
};

/// Run `job` with composed obligations discharged through assume-guarantee
/// learning where possible.  Component obligations and every fallback go
/// through `svc` unchanged (same caching, budgets, engines, tracing).
/// Factory jobs and jobs without `compose` pass straight through.
service::JobReport runLearnedJob(service::VerificationService& svc,
                                 const service::VerificationJob& job,
                                 const LearnOptions& lopts,
                                 service::RunTrace* trace = nullptr,
                                 service::MetricsRegistry* metrics = nullptr);

}  // namespace cmc::agr
