#include "agr/search.hpp"

#include <algorithm>

#include "agr/alphabet.hpp"

namespace cmc::agr {

namespace {

std::vector<std::size_t> maskToGroup(std::size_t mask, std::size_t n,
                                     bool complement) {
  std::vector<std::size_t> group;
  for (std::size_t i = 0; i < n; ++i) {
    const bool in = (mask >> i) & 1U;
    if (in != complement) group.push_back(i);
  }
  return group;
}

bool covers(const std::vector<smv::Module>& modules,
            const std::vector<std::size_t>& group,
            const std::set<std::string>& needed) {
  std::set<std::string> have;
  for (std::size_t i : group) {
    const std::set<std::string> own = moduleVariables(modules[i]);
    have.insert(own.begin(), own.end());
  }
  return std::includes(have.begin(), have.end(), needed.begin(),
                       needed.end());
}

}  // namespace

std::vector<Split> enumerateSplits(const std::vector<smv::Module>& modules,
                                   const std::set<std::string>& needed,
                                   std::size_t alphabetCap,
                                   std::size_t maxSplits) {
  const std::size_t n = modules.size();
  std::vector<Split> splits;
  if (n < 2) return splits;

  std::vector<std::size_t> masks;
  if (n <= 12) {
    // All proper nonempty subsets as G1.
    for (std::size_t mask = 1; mask + 1 < (std::size_t{1} << n); ++mask) {
      masks.push_back(mask);
    }
  } else {
    // Too many modules for exhaustive enumeration: leave-one-out
    // (G2 = {i}) and take-one (G1 = {i}) candidates only.
    const std::size_t all = n >= 64 ? ~std::size_t{0}
                                    : (std::size_t{1} << n) - 1;
    for (std::size_t i = 0; i < n && i < 63; ++i) {
      masks.push_back(all & ~(std::size_t{1} << i));
      masks.push_back(std::size_t{1} << i);
    }
  }

  for (std::size_t mask : masks) {
    Split s;
    s.g1 = maskToGroup(mask, n, /*complement=*/false);
    s.g2 = maskToGroup(mask, n, /*complement=*/true);
    if (s.g1.empty() || s.g2.empty()) continue;
    if (!covers(modules, s.g1, needed)) continue;
    s.cost = interfaceProduct(modules, s.g1, s.g2);
    if (s.cost > static_cast<double>(alphabetCap)) continue;
    splits.push_back(std::move(s));
  }

  std::stable_sort(splits.begin(), splits.end(),
                   [](const Split& a, const Split& b) {
                     if (a.cost != b.cost) return a.cost < b.cost;
                     return a.g1.size() < b.g1.size();
                   });
  if (splits.size() > maxSplits) splits.resize(maxSplits);
  return splits;
}

}  // namespace cmc::agr
