#include "ring/token_ring.hpp"

#include <sstream>

#include "comp/leadsto.hpp"
#include "comp/rules.hpp"
#include "comp/verifier.hpp"
#include "symbolic/checker.hpp"

namespace cmc::ring {

using ctl::FormulaPtr;

namespace {

std::string tok(int i) { return "tok" + std::to_string(i); }
std::string st(int i) { return "st" + std::to_string(i); }

}  // namespace

std::string stationSmv(int i, int n) {
  CMC_ASSERT(n >= 2 && i >= 0 && i < n);
  const int next = (i + 1) % n;
  std::ostringstream out;
  out << "MODULE station" << i << "\n";
  out << "VAR " << st(i) << " : {idle, want, cs};\n";
  out << "    " << tok(i) << " : boolean;\n";
  out << "    " << tok(next) << " : boolean;\n";
  out << "ASSIGN\n";
  out << "  next(" << st(i) << ") :=\n    case\n";
  out << "      " << st(i) << " = idle : {idle, want};\n";
  out << "      " << st(i) << " = want & " << tok(i) << " : cs;\n";
  out << "      " << st(i) << " = cs : idle;\n";
  out << "      1 : " << st(i) << ";\n    esac;\n";
  out << "  next(" << tok(i) << ") :=\n    case\n";
  out << "      " << st(i) << " = idle & " << tok(i) << " : 0;\n";
  out << "      " << st(i) << " = cs & " << tok(i) << " : 0;\n";
  out << "      1 : " << tok(i) << ";\n    esac;\n";
  out << "  next(" << tok(next) << ") :=\n    case\n";
  out << "      " << st(i) << " = idle & " << tok(i) << " : 1;\n";
  out << "      " << st(i) << " = cs & " << tok(i) << " : 1;\n";
  out << "      1 : " << tok(next) << ";\n    esac;\n";
  return out.str();
}

RingComponents buildRing(symbolic::Context& ctx, int n) {
  if (n < 2) {
    throw ModelError("token ring needs at least two stations");
  }
  RingComponents out;
  out.n = n;
  for (int i = 0; i < n; ++i) {
    out.stations.push_back(smv::elaborateText(ctx, stationSmv(i, n)));
    symbolic::addReflexive(out.stations.back().sys);
  }
  return out;
}

FormulaPtr tokenExactlyAt(int j, int n) {
  std::vector<FormulaPtr> parts;
  for (int k = 0; k < n; ++k) {
    parts.push_back(k == j ? ctl::atom(tok(k))
                           : ctl::mkNot(ctl::atom(tok(k))));
  }
  return ctl::conj(parts);
}

FormulaPtr atMostOneToken(int n) {
  std::vector<FormulaPtr> parts;
  for (int a = 0; a < n; ++a) {
    for (int b = a + 1; b < n; ++b) {
      parts.push_back(ctl::mkNot(
          ctl::mkAnd(ctl::atom(tok(a)), ctl::atom(tok(b)))));
    }
  }
  return ctl::conj(parts);
}

FormulaPtr ringInvariant(int n) {
  std::vector<FormulaPtr> parts{atMostOneToken(n)};
  for (int i = 0; i < n; ++i) {
    parts.push_back(
        ctl::mkImplies(ctl::eq(st(i), "cs"), ctl::atom(tok(i))));
  }
  return ctl::conj(parts);
}

FormulaPtr mutualExclusion(int n) {
  std::vector<FormulaPtr> parts;
  for (int a = 0; a < n; ++a) {
    for (int b = a + 1; b < n; ++b) {
      parts.push_back(ctl::mkNot(
          ctl::mkAnd(ctl::eq(st(a), "cs"), ctl::eq(st(b), "cs"))));
    }
  }
  return ctl::conj(parts);
}

FormulaPtr ringInit(int n) {
  std::vector<FormulaPtr> parts{tokenExactlyAt(0, n)};
  for (int i = 0; i < n; ++i) {
    parts.push_back(ctl::eq(st(i), "idle"));
  }
  return ctl::conj(parts);
}

RingReport verifyTokenRing(int n, bool liveness, bool crossCheck) {
  RingReport report;
  report.n = n;

  symbolic::Context ctx(1 << 14);
  RingComponents comps = buildRing(ctx, n);

  comp::CompositionalVerifier verifier(ctx);
  for (const smv::ElaboratedModule& station : comps.stations) {
    verifier.addComponent(station.sys);
  }

  // ---- Safety: mutual exclusion by invariance -------------------------------
  report.safety = verifier.verifyInvariance(
      ringInit(n), ringInvariant(n), mutualExclusion(n), report.proof,
      "ring.mutex");

  // ---- Liveness: want0 => AF cs0 --------------------------------------------
  // The wanting station is 0; the chain starts wherever the token is and
  // walks the ring back to it.  W = "st0 = want" is threaded through every
  // hop region; T_j pins the token position exactly (the universal AX
  // obligations quantify over all states, so multi-token corner states
  // must be excluded by the region itself).
  ctl::Spec livenessSpec{"ring.liveness", ctl::Restriction::trivial(),
                         ctl::mkTrue()};
  if (liveness) {
    const FormulaPtr want0 = ctl::eq(st(0), "want");
    const FormulaPtr cs0 = ctl::eq(st(0), "cs");
    comp::LeadsToLedger ledger(ctx, verifier.composed().vars, report.proof);
    bool ok = true;

    // Expansion checkers per station (premises are checked on expansions,
    // as licensed by Lemma 8).
    std::vector<symbolic::SymbolicSystem> expansions;
    std::vector<symbolic::VarId> allVars = verifier.composed().vars;
    for (int i = 0; i < n; ++i) {
      expansions.push_back(
          symbolic::expand(comps.stations[i].sys, allVars));
      expansions.back().name = "station" + std::to_string(i) + " (expanded)";
    }

    auto rule4 = [&](int station, const FormulaPtr& p, const FormulaPtr& q,
                     const std::string& name)
        -> std::optional<comp::LeadsToLedger::FactId> {
      symbolic::Checker checker(expansions[station]);
      std::optional<comp::Guarantee> g =
          comp::deriveRule4(checker, p, q, report.proof, name);
      if (!g.has_value()) return std::nullopt;
      std::vector<ctl::Spec> conclusions;
      if (!verifier.discharge(*g, report.proof, &conclusions)) {
        return std::nullopt;
      }
      return ledger.fromAU(conclusions.at(0));
    };

    // Per-position fact: (T_j ∧ want0) ~> cs0, built backwards from j = 0.
    std::vector<std::optional<comp::LeadsToLedger::FactId>> toGoal(n);
    // Entry at station 0: (T_0 ∧ want0) ~> cs0.
    toGoal[0] = rule4(0, ctl::mkAnd(tokenExactlyAt(0, n), want0), cs0,
                      "ring.enter0");
    ok = ok && toGoal[0].has_value();
    for (int hop = n - 1; ok && hop >= 1; --hop) {
      const int j = hop;
      const int nextPos = (j + 1) % n;
      const FormulaPtr Tj = tokenExactlyAt(j, n);
      const FormulaPtr Tnext = tokenExactlyAt(nextPos, n);
      const FormulaPtr arrive = ctl::mkAnd(Tnext, want0);
      const std::string tag = "ring.hop" + std::to_string(j);

      // A: pass while idle.
      auto a = rule4(j, ctl::conj({Tj, ctl::eq(st(j), "idle"), want0}),
                     arrive, tag + ".idle");
      // B: enter cs while wanting, C: leave cs and pass.
      auto b = rule4(j, ctl::conj({Tj, ctl::eq(st(j), "want"), want0}),
                     ctl::conj({Tj, ctl::eq(st(j), "cs"), want0}),
                     tag + ".enter");
      auto c = rule4(j, ctl::conj({Tj, ctl::eq(st(j), "cs"), want0}),
                     arrive, tag + ".exit");
      if (!a || !b || !c || !toGoal[nextPos]) {
        ok = false;
        break;
      }
      // The hop: (T_j ∧ want0) ~> (T_next ∧ want0) ~> cs0, case split over
      // st_j ∈ {idle, want, cs} (station j may already be in its critical
      // section when the chain starts).
      const auto bc = ledger.chain(*b, *c);
      const auto arriveToGoal = *toGoal[nextPos];
      const auto viaA = ledger.chain(*a, arriveToGoal);
      const auto viaBC = ledger.chain(bc, arriveToGoal);
      const auto viaC = ledger.chain(*c, arriveToGoal);
      toGoal[j] = ledger.caseSplit(ctl::mkAnd(Tj, want0), cs0,
                                   {viaA, viaBC, viaC});
    }

    if (ok) {
      // Any single-token position leads to cs0 when station 0 wants.
      std::vector<comp::LeadsToLedger::FactId> cases;
      std::vector<FormulaPtr> positions;
      for (int j = 0; j < n; ++j) {
        cases.push_back(*toGoal[j]);
        positions.push_back(tokenExactlyAt(j, n));
      }
      const auto final = ledger.caseSplit(
          ctl::mkAnd(ctl::disj(positions), want0), cs0, cases);
      livenessSpec = ledger.concludeAF(
          final, ctl::mkAnd(ctl::disj(positions), want0), "ring.liveness");
      ok = ledger.valid();
    }
    report.liveness = ok;
  }
  report.componentChecks = report.proof.modelCheckCount();

  // ---- Cross-checks ----------------------------------------------------------
  if (crossCheck) {
    symbolic::Checker composed(verifier.composed());
    ctl::Restriction r;
    r.init = ringInit(n);
    r.fairness = {ctl::mkTrue()};
    report.safetyCrossCheck =
        composed.holds(r, ctl::AG(mutualExclusion(n)));
    report.proof.add(comp::ProofNode::Kind::ModelCheck,
                     "cross-check: composed ring |= AG mutex",
                     report.safetyCrossCheck);
    if (liveness && report.liveness) {
      report.livenessCrossCheck =
          composed.holds(livenessSpec.r, livenessSpec.f);
      report.proof.add(comp::ProofNode::Kind::ModelCheck,
                       "cross-check: composed ring |= liveness under the "
                       "derived fairness",
                       report.livenessCrossCheck);
    }
  }
  return report;
}

}  // namespace cmc::ring
