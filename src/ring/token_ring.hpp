// Token-ring mutual exclusion: a second case study exercising the
// compositional theory on the domain the paper's discussion names
// ("especially network protocols", §5).
//
// n stations (n ≥ 2) pass a single token around a ring.  Station i owns
//   st<i>  ∈ {idle, want, cs}   its local state,
//   tok<i>                      "token is at station i" (shared with the
//                               predecessor station, which sets it),
// and writes tok<(i+1) mod n> when passing.  A station may enter its
// critical section only while holding the token and passes the token on
// when idle or when leaving the critical section.
//
// Verified compositionally:
//  - safety (mutual exclusion) via the invariance rule with
//      Inv = at-most-one-token ∧ (csᵢ ⇒ tokᵢ);
//  - liveness (wantᵢ ⇒ AF csᵢ) via 3 Rule-4 guarantees per ring hop —
//    pass-while-idle, enter-cs, exit-and-pass — chained around the ring
//    with the leads-to ledger and case-split over the token position.
#pragma once

#include "comp/proof.hpp"
#include "smv/elaborate.hpp"

namespace cmc::ring {

/// SMV text of station `i` in an n-station ring.
std::string stationSmv(int i, int n);

struct RingComponents {
  std::vector<smv::ElaboratedModule> stations;
  int n = 0;
};

/// Elaborate all n stations into `ctx` (reflexive closure applied).
RingComponents buildRing(symbolic::Context& ctx, int n);

/// "The token is exactly at station j."
ctl::FormulaPtr tokenExactlyAt(int j, int n);
/// At most one token anywhere.
ctl::FormulaPtr atMostOneToken(int n);
/// The safety invariant Inv (≤1 token ∧ ⋀ csᵢ ⇒ tokᵢ).
ctl::FormulaPtr ringInvariant(int n);
/// Mutual exclusion: no two stations in cs.
ctl::FormulaPtr mutualExclusion(int n);
/// Initial condition: token at station 0, everyone idle.
ctl::FormulaPtr ringInit(int n);

struct RingReport {
  comp::ProofTree proof;
  int n = 0;
  bool safety = false;
  bool liveness = false;
  bool safetyCrossCheck = false;
  bool livenessCrossCheck = false;
  std::size_t componentChecks = 0;

  bool allOk() const { return safety && liveness && proof.valid(); }
};

/// Verify mutual exclusion (invariance rule) and, when `liveness` is set,
/// want₀ ⇒ AF cs₀ for station 0 (Rule 4 chain around the ring).
/// `crossCheck` re-checks both conclusions on the composed system.
RingReport verifyTokenRing(int n, bool liveness = true,
                           bool crossCheck = false);

}  // namespace cmc::ring
