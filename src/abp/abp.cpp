#include "abp/abp.hpp"

#include "comp/verifier.hpp"
#include "symbolic/checker.hpp"

namespace cmc::abp {

const std::string& senderSmv() {
  static const std::string text = R"(
-- ABP sender: retransmits the current bit while the slot is empty,
-- consumes acknowledgements, flips on the matching one.
MODULE abpsender
VAR sbit : boolean;
    msg : {none, m0, m1};
    ack : {none, a0, a1};
ASSIGN
  next(msg) :=
    case
      msg = none & !sbit : m0;
      msg = none & sbit : m1;
      1 : msg;
    esac;
  next(sbit) :=
    case
      ack = a0 & !sbit : 1;
      ack = a1 & sbit : 0;
      1 : sbit;
    esac;
  next(ack) :=
    case
      ack = a0 | ack = a1 : none;
      1 : ack;
    esac;
)";
  return text;
}

const std::string& receiverSmv() {
  static const std::string text = R"(
-- ABP receiver: consumes messages, delivers on the expected bit, and
-- always (re-)acknowledges the bit it saw.
MODULE abpreceiver
VAR rbit : boolean;
    msg : {none, m0, m1};
    ack : {none, a0, a1};
    delivered : {none, d0, d1};
ASSIGN
  next(rbit) :=
    case
      msg = m0 & !rbit : 1;
      msg = m1 & rbit : 0;
      1 : rbit;
    esac;
  next(delivered) :=
    case
      msg = m0 & !rbit : d0;
      msg = m1 & rbit : d1;
      1 : delivered;
    esac;
  next(ack) :=
    case
      msg = m0 : a0;
      msg = m1 : a1;
      1 : ack;
    esac;
  next(msg) :=
    case
      msg = m0 | msg = m1 : none;
      1 : msg;
    esac;
)";
  return text;
}

const std::string& msgChannelSmv() {
  static const std::string text = R"(
-- Lossy message channel: may drop the slot content at any time.
MODULE abpmsgchannel
VAR msg : {none, m0, m1};
ASSIGN
  next(msg) :=
    case
      msg = m0 | msg = m1 : {none, msg};
      1 : msg;
    esac;
)";
  return text;
}

const std::string& ackChannelSmv() {
  static const std::string text = R"(
-- Lossy acknowledgement channel.
MODULE abpackchannel
VAR ack : {none, a0, a1};
ASSIGN
  next(ack) :=
    case
      ack = a0 | ack = a1 : {none, ack};
      1 : ack;
    esac;
)";
  return text;
}

AbpComponents buildAbp(symbolic::Context& ctx) {
  AbpComponents out;
  out.sender = smv::elaborateText(ctx, senderSmv());
  out.receiver = smv::elaborateText(ctx, receiverSmv());
  out.msgChannel = smv::elaborateText(ctx, msgChannelSmv());
  out.ackChannel = smv::elaborateText(ctx, ackChannelSmv());
  symbolic::addReflexive(out.sender.sys);
  symbolic::addReflexive(out.receiver.sys);
  symbolic::addReflexive(out.msgChannel.sys);
  symbolic::addReflexive(out.ackChannel.sys);
  return out;
}

ctl::FormulaPtr abpInit() {
  return ctl::conj({
      ctl::mkNot(ctl::atom("sbit")),
      ctl::mkNot(ctl::atom("rbit")),
      ctl::eq("msg", "none"),
      ctl::eq("ack", "none"),
      ctl::eq("delivered", "none"),
  });
}

namespace {

ctl::FormulaPtr ackIn(const char* a, const char* b) {
  return ctl::mkOr(ctl::eq("ack", a), ctl::eq("ack", b));
}

ctl::FormulaPtr deliveredIn(const char* a, const char* b) {
  return ctl::mkOr(ctl::eq("delivered", a), ctl::eq("delivered", b));
}

}  // namespace

ctl::FormulaPtr abpInvariant() {
  const ctl::FormulaPtr s0 = ctl::mkNot(ctl::atom("sbit"));
  const ctl::FormulaPtr s1 = ctl::atom("sbit");
  const ctl::FormulaPtr r0 = ctl::mkNot(ctl::atom("rbit"));
  const ctl::FormulaPtr r1 = ctl::atom("rbit");
  // Awaiting delivery of b: sbit = rbit = b.
  const ctl::FormulaPtr awaiting0 =
      ctl::mkImplies(ctl::mkAnd(s0, r0),
                     ctl::mkAnd(ackIn("none", "a1"),
                                deliveredIn("none", "d1")));
  const ctl::FormulaPtr awaiting1 =
      ctl::mkImplies(ctl::mkAnd(s1, r1),
                     ctl::mkAnd(ackIn("none", "a0"),
                                deliveredIn("none", "d0")));
  // b delivered, awaiting the acknowledgement: sbit = b, rbit = ¬b.
  const ctl::FormulaPtr acked0 = ctl::mkImplies(
      ctl::mkAnd(s0, r1),
      ctl::conj({ctl::mkOr(ctl::eq("msg", "none"), ctl::eq("msg", "m0")),
                 ackIn("none", "a0"), ctl::eq("delivered", "d0")}));
  const ctl::FormulaPtr acked1 = ctl::mkImplies(
      ctl::mkAnd(s1, r0),
      ctl::conj({ctl::mkOr(ctl::eq("msg", "none"), ctl::eq("msg", "m1")),
                 ackIn("none", "a1"), ctl::eq("delivered", "d1")}));
  return ctl::conj({awaiting0, awaiting1, acked0, acked1});
}

ctl::FormulaPtr abpTarget() {
  // No duplicate delivery: while both ends expect b, b has not been
  // delivered this round.
  const ctl::FormulaPtr s0 = ctl::mkNot(ctl::atom("sbit"));
  const ctl::FormulaPtr r0 = ctl::mkNot(ctl::atom("rbit"));
  return ctl::mkAnd(
      ctl::mkImplies(ctl::mkAnd(s0, r0),
                     ctl::mkNot(ctl::eq("delivered", "d0"))),
      ctl::mkImplies(ctl::mkAnd(ctl::atom("sbit"), ctl::atom("rbit")),
                     ctl::mkNot(ctl::eq("delivered", "d1"))));
}

AbpReport verifyAbp(bool liveness, bool crossCheck) {
  AbpReport report;
  symbolic::Context ctx(1 << 14);
  AbpComponents comps = buildAbp(ctx);

  comp::CompositionalVerifier verifier(ctx);
  verifier.addComponent(comps.sender.sys);
  verifier.addComponent(comps.receiver.sys);
  verifier.addComponent(comps.msgChannel.sys);
  verifier.addComponent(comps.ackChannel.sys);

  report.safety = verifier.verifyInvariance(abpInit(), abpInvariant(),
                                            abpTarget(), report.proof,
                                            "abp.nodup");
  report.componentChecks = report.proof.modelCheckCount();

  if (crossCheck || liveness) {
    symbolic::Checker composed(verifier.composed());
    if (crossCheck) {
      ctl::Restriction r;
      r.init = abpInit();
      r.fairness = {ctl::mkTrue()};
      report.safetyCrossCheck = composed.holds(r, ctl::AG(abpTarget()));
      report.proof.add(comp::ProofNode::Kind::ModelCheck,
                       "cross-check: composed ABP |= AG no-dup",
                       report.safetyCrossCheck);
    }
    if (liveness) {
      // Direct (non-compositional) liveness: the first message is
      // eventually delivered, provided the system does not stutter or
      // lose forever.  The fairness constraints say: infinitely often,
      // either d0 is already delivered or a real protocol step has just
      // become possible and must fire — encoded as recurring states where
      // progress has been made (msg or ack in flight, or delivery done).
      ctl::Restriction r;
      r.init = abpInit();
      r.fairness = {
          // the sender's (re)transmission keeps arriving:
          ctl::mkOr(ctl::eq("delivered", "d0"),
                    ctl::eq("msg", "m0")),
          // and the *receiver* keeps consuming it (a0 can only come from
          // the receiver; pure channel loss never acknowledges, so this
          // rules out the lose-forever paths):
          ctl::mkOr(ctl::eq("delivered", "d0"),
                    ctl::eq("ack", "a0")),
      };
      report.liveness =
          composed.holds(r, ctl::AF(ctl::eq("delivered", "d0")));
      report.proof.add(
          comp::ProofNode::Kind::ModelCheck,
          "direct check: composed ABP |=_(init, {msg keeps flowing}) "
          "AF delivered=d0  (non-compositional)",
          report.liveness);
    }
  }
  return report;
}

}  // namespace cmc::abp
