// Alternating Bit Protocol: a third case study, four components —
// sender, receiver, and two lossy single-slot channels — communicating
// through shared variables, exactly the modeling style of the paper's §4
// ("especially network protocols", §5).
//
//   sender    owns sbit; writes msg (retransmit current bit while the slot
//             is empty), consumes acks, flips sbit on the matching ack;
//   msg chan  may lose the message in flight (msg := none);
//   ack chan  may lose the acknowledgement;
//   receiver  owns rbit (expected bit) and delivered (last delivered);
//             consumes messages, delivers when the bit matches, always
//             (re-)acknowledges the received bit.
//
// Safety (no duplicate delivery), proved compositionally via the
// invariance rule with the phase invariant
//   sbit = rbit = b  (awaiting delivery of b):
//       ack ∈ {none, a_¬b} ∧ delivered ∈ {none, d_¬b}
//   sbit = b ≠ rbit  (b delivered, awaiting ack):
//       msg ∈ {none, m_b} ∧ ack ∈ {none, a_b} ∧ delivered = d_b
// which implies the target  AG(sbit = rbit = b ⇒ delivered ≠ d_b):
// while both ends agree on expecting b, b has not been delivered this
// round — deliveries strictly alternate d0, d1, d0, …
//
// (Liveness — "every message is eventually delivered" — needs strong
// fairness on the lossy channels; verifyAbp offers it as an optional
// direct global check under the natural fairness constraints, honestly
// labelled non-compositional.)
#pragma once

#include "comp/proof.hpp"
#include "smv/elaborate.hpp"

namespace cmc::abp {

const std::string& senderSmv();
const std::string& receiverSmv();
const std::string& msgChannelSmv();
const std::string& ackChannelSmv();

struct AbpComponents {
  smv::ElaboratedModule sender;
  smv::ElaboratedModule receiver;
  smv::ElaboratedModule msgChannel;
  smv::ElaboratedModule ackChannel;
};

/// Elaborate all four components into `ctx` (reflexive closure applied).
AbpComponents buildAbp(symbolic::Context& ctx);

/// Initial condition: bits agree at 0, channels empty, nothing delivered.
ctl::FormulaPtr abpInit();
/// The phase invariant described above.
ctl::FormulaPtr abpInvariant();
/// No-duplicate-delivery target.
ctl::FormulaPtr abpTarget();

struct AbpReport {
  comp::ProofTree proof;
  bool safety = false;           ///< compositional, via invariance
  bool safetyCrossCheck = false; ///< direct global check
  bool liveness = false;         ///< direct global check under fairness
  std::size_t componentChecks = 0;

  bool allOk() const { return safety && proof.valid(); }
};

/// Verify the protocol.  `liveness` additionally model checks
/// AF(delivered = d0) on the composition under fairness that rules out
/// perpetual loss and starvation (global, non-compositional).
AbpReport verifyAbp(bool liveness = true, bool crossCheck = true);

}  // namespace cmc::abp
