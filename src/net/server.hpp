// The cmc verification daemon (net layer): a long-lived server that owns
// one VerificationService — one worker pool, one process-lifetime
// obligation cache — and serves the wire protocol (net/protocol.hpp) over
// a Unix-domain socket, optionally also loopback TCP.
//
// Why a daemon: every `cmc check` pays process startup, cold BDD contexts,
// and a cold obligation cache; the warm-cache win only compounds within a
// single process.  The server turns the obligation stream into a served
// workload — the cache, the partitioned checker, and the journal amortize
// across requests instead of within one run.
//
// Threading model
//   - one accept thread per listener (poll + accept, so shutdown is
//     prompt);
//   - one handler thread per connection; a CHECK runs synchronously on it
//     (the scheduler fans its obligations onto the shared pool), so
//     request concurrency == connection concurrency;
//   - a client watcher thread polls running requests' sockets for hangup
//     and raises their cancel flag — a vanished client frees its workers;
//   - a metrics thread periodically emits a "metrics" JSONL event into
//     the trace stream.
//
// Admission control
//   At most maxInFlight CHECKs execute at once; up to queueDepth more may
//   wait for a slot.  Beyond that the server answers BUSY immediately —
//   explicit backpressure, never unbounded queueing.  Per-request
//   deadline/node budgets ride the existing BudgetToken enforcement.
//
// Wind-down (DRAIN command or SIGTERM in cmc serve)
//   New CHECKs are refused with DRAINING; queued-and-admitted and running
//   requests complete and get their responses; the journal already holds
//   every decided outcome (append+flush per verdict); then listeners and
//   connections close and shutdown() returns.  SIGTERM = drain + exit 0.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include <condition_variable>

#include "net/protocol.hpp"
#include "service/journal.hpp"
#include "service/metrics.hpp"
#include "service/scheduler.hpp"
#include "service/trace_log.hpp"
#include "util/timer.hpp"

namespace cmc::net {

struct ServerOptions {
  /// Path of the Unix-domain listener (required; created on start, best-
  /// effort unlinked on shutdown).
  std::string socketPath;
  /// Loopback TCP listener: -1 = disabled, 0 = ephemeral (see
  /// boundTcpPort()), >0 = that port on 127.0.0.1.
  int tcpPort = -1;
  /// Concurrent CHECK executions (0 = the service's worker-thread count).
  unsigned maxInFlight = 0;
  /// Admitted CHECKs allowed to wait for an execution slot; one more and
  /// the server answers BUSY.
  std::size_t queueDepth = 16;
  /// Server-side defaults for per-request job options (deadline, budget,
  /// engine, compose, ...); requests overlay their own fields.
  service::JobOptions defaults;
  /// Directory that request "model" paths resolve under (empty = the
  /// server process's cwd).
  std::string modelRoot;
  /// Period of the "metrics" trace event, seconds (0 = disabled).
  double metricsIntervalSeconds = 10.0;
};

class Server {
 public:
  /// The service, metrics registry, trace, and journal/replay are owned by
  /// the embedder (cmc serve) and must outlive the server.  journal and
  /// replay may be null; trace may not.
  Server(ServerOptions opts, service::VerificationService& svc,
         service::MetricsRegistry& metrics, service::RunTrace& trace,
         service::RunJournal* journal, const service::JournalReplay* replay);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind + listen + start the accept/watcher/metrics threads.  False
  /// with a message on any setup failure.
  bool start(std::string* error);

  /// Begin wind-down: refuse new CHECKs (DRAINING), let admitted ones
  /// finish.  Idempotent; callable from any thread (DRAIN handler) — but
  /// NOT from a signal handler (cmc serve's handler only sets an atomic
  /// the main loop polls).
  void requestDrain();

  bool drainRequested() const noexcept {
    return draining_.load(std::memory_order_relaxed);
  }

  /// Drain (if not already draining), wait for every admitted CHECK to
  /// complete and respond, close listeners and connections, join all
  /// threads, emit a final metrics event, unlink the socket.  Idempotent.
  void shutdown();

  /// The actual TCP port (after start) when tcpPort was 0; -1 if the TCP
  /// listener is disabled.
  int boundTcpPort() const noexcept { return boundTcpPort_; }

  /// Admitted CHECKs currently executing / waiting for a slot.
  unsigned inFlight() const;
  std::size_t queued() const;

  double uptimeSeconds() const { return uptime_.seconds(); }

 private:
  struct RequestState {
    std::string id;
    std::string job;
    std::atomic<bool> cancel{false};
    std::atomic<int> connFd{-1};  ///< watched for hangup while running
    std::atomic<bool> running{false};
    WallTimer since;
  };

  void acceptLoop(int listenFd, const char* transport);
  void watcherLoop();
  void metricsLoop();
  void handleConnection(int fd);
  void handleCheck(LineSocket& sock, const Request& req);
  std::string statusResponse();
  std::string statsResponse();
  std::string cancelResponse(const Request& req);
  /// CACHE_PUT: insert one decided verdict into the obligation cache (the
  /// cluster coordinator's replica write-through).  Needs the raw request
  /// line — the verdict payload fields ride it, not the Request struct.
  std::string cachePutResponse(const Request& req, const std::string& line);
  void emitMetricsEvent(const char* reason);

  /// Admission verdict for one CHECK.  CancelledQueued: the request was
  /// cancelled while waiting for a slot — answered without a worker.
  enum class Admit { Admitted, Busy, Draining, CancelledQueued };
  Admit admit(RequestState& state, double* waitSeconds);
  void releaseSlot();

  bool registerRequest(const std::shared_ptr<RequestState>& state);
  void unregisterRequest(const std::string& id);

  ServerOptions opts_;
  service::VerificationService& svc_;
  service::MetricsRegistry& metrics_;
  service::RunTrace& trace_;
  service::RunJournal* journal_;
  const service::JournalReplay* replay_;

  std::atomic<bool> draining_{false};
  std::atomic<bool> stopping_{false};
  bool shutdownDone_ = false;
  std::mutex shutdownMutex_;

  int unixFd_ = -1;
  int tcpFd_ = -1;
  int boundTcpPort_ = -1;
  WallTimer uptime_;
  std::atomic<std::uint64_t> serial_{0};

  // Admission state.
  mutable std::mutex admitMutex_;
  std::condition_variable admitCv_;
  unsigned executing_ = 0;
  std::size_t waiting_ = 0;
  unsigned maxInFlight_ = 1;

  // Live requests by id (queued or running).
  mutable std::mutex requestsMutex_;
  std::unordered_map<std::string, std::shared_ptr<RequestState>> requests_;

  // Connection bookkeeping: fds for shutdown, threads for join.
  std::mutex connMutex_;
  std::vector<int> connFds_;
  std::vector<std::thread> connThreads_;
  std::vector<std::thread> acceptThreads_;
  std::thread watcherThread_;
  std::thread metricsThread_;
  std::condition_variable stopCv_;
  std::mutex stopMutex_;
};

}  // namespace cmc::net
