#include "net/server.hpp"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <fstream>
#include <sstream>

#include "agr/engine.hpp"
#include "util/failpoint.hpp"
#include "util/version.hpp"

#ifndef POLLRDHUP
#define POLLRDHUP 0x2000
#endif

namespace cmc::net {

namespace {

std::string errnoMessage(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

/// Job name from a model path: basename without the extension.
std::string jobNameFromPath(const std::string& path) {
  std::size_t slash = path.find_last_of('/');
  std::string base =
      slash == std::string::npos ? path : path.substr(slash + 1);
  const std::size_t dot = base.find_last_of('.');
  if (dot != std::string::npos && dot > 0) base.resize(dot);
  return base.empty() ? "job" : base;
}

}  // namespace

Server::Server(ServerOptions opts, service::VerificationService& svc,
               service::MetricsRegistry& metrics, service::RunTrace& trace,
               service::RunJournal* journal,
               const service::JournalReplay* replay)
    : opts_(std::move(opts)),
      svc_(svc),
      metrics_(metrics),
      trace_(trace),
      journal_(journal),
      replay_(replay) {}

Server::~Server() { shutdown(); }

bool Server::start(std::string* error) {
  maxInFlight_ =
      opts_.maxInFlight > 0 ? opts_.maxInFlight : std::max(1u, svc_.threads());
  if (opts_.socketPath.empty() && opts_.tcpPort < 0) {
    *error = "no listener configured (need a socket path or a TCP port)";
    return false;
  }

  if (!opts_.socketPath.empty()) {
    sockaddr_un addr{};
    if (opts_.socketPath.size() >= sizeof addr.sun_path) {
      *error = "socket path too long: " + opts_.socketPath;
      return false;
    }
    unixFd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (unixFd_ < 0) {
      *error = errnoMessage("socket(AF_UNIX)");
      return false;
    }
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, opts_.socketPath.c_str(),
                opts_.socketPath.size() + 1);
    // A stale socket file (SIGKILLed predecessor) would make bind fail;
    // probe it first so we never steal a live server's listener.
    const int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (probe >= 0) {
      if (::connect(probe, reinterpret_cast<const sockaddr*>(&addr),
                    sizeof addr) == 0) {
        ::close(probe);
        ::close(unixFd_);
        unixFd_ = -1;
        *error = "another server is already listening on " + opts_.socketPath;
        return false;
      }
      ::close(probe);
    }
    ::unlink(opts_.socketPath.c_str());
    if (::bind(unixFd_, reinterpret_cast<const sockaddr*>(&addr),
               sizeof addr) != 0 ||
        ::listen(unixFd_, 64) != 0) {
      *error = errnoMessage(("bind/listen " + opts_.socketPath).c_str());
      ::close(unixFd_);
      unixFd_ = -1;
      return false;
    }
  }

  if (opts_.tcpPort >= 0) {
    tcpFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (tcpFd_ < 0) {
      *error = errnoMessage("socket(AF_INET)");
      return false;
    }
    const int one = 1;
    ::setsockopt(tcpFd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // never a public iface
    addr.sin_port = htons(static_cast<std::uint16_t>(opts_.tcpPort));
    if (::bind(tcpFd_, reinterpret_cast<const sockaddr*>(&addr),
               sizeof addr) != 0 ||
        ::listen(tcpFd_, 64) != 0) {
      *error = errnoMessage("bind/listen TCP");
      ::close(tcpFd_);
      tcpFd_ = -1;
      return false;
    }
    sockaddr_in bound{};
    socklen_t len = sizeof bound;
    if (::getsockname(tcpFd_, reinterpret_cast<sockaddr*>(&bound), &len) == 0)
      boundTcpPort_ = ntohs(bound.sin_port);
  }

  uptime_.reset();
  if (unixFd_ >= 0)
    acceptThreads_.emplace_back(&Server::acceptLoop, this, unixFd_, "unix");
  if (tcpFd_ >= 0)
    acceptThreads_.emplace_back(&Server::acceptLoop, this, tcpFd_, "tcp");
  watcherThread_ = std::thread(&Server::watcherLoop, this);
  if (opts_.metricsIntervalSeconds > 0.0)
    metricsThread_ = std::thread(&Server::metricsLoop, this);

  service::JsonObject ev;
  ev.put("event", "server_start")
      .putDouble("t", trace_.elapsedSeconds())
      .put("cmc_version", util::versionString())
      .put("socket", opts_.socketPath)
      .putUint("workers", svc_.threads())
      .putUint("max_inflight", maxInFlight_)
      .putUint("queue_depth", opts_.queueDepth);
  if (boundTcpPort_ >= 0)
    ev.putUint("tcp_port", static_cast<std::uint64_t>(boundTcpPort_));
  trace_.emit(ev);
  return true;
}

void Server::requestDrain() {
  if (draining_.exchange(true)) return;
  metrics_.counter("server_drains").inc();
  trace_.emit(service::JsonObject()
                  .put("event", "drain")
                  .putDouble("t", trace_.elapsedSeconds())
                  .putUint("in_flight", inFlight())
                  .putUint("queued", queued()));
  // Waiters re-check their predicate; none are admitted past this point.
  admitCv_.notify_all();
}

void Server::shutdown() {
  std::lock_guard<std::mutex> shutdownLock(shutdownMutex_);
  if (shutdownDone_) return;
  requestDrain();

  // Every admitted CHECK completes and writes its response first; the
  // journal already holds each decided obligation.
  {
    std::unique_lock<std::mutex> lock(admitMutex_);
    admitCv_.wait(lock, [&] { return executing_ == 0 && waiting_ == 0; });
  }

  stopping_.store(true);
  {
    std::lock_guard<std::mutex> lock(stopMutex_);
  }
  stopCv_.notify_all();
  for (std::thread& t : acceptThreads_) t.join();
  acceptThreads_.clear();
  if (unixFd_ >= 0) {
    ::close(unixFd_);
    unixFd_ = -1;
    ::unlink(opts_.socketPath.c_str());
  }
  if (tcpFd_ >= 0) {
    ::close(tcpFd_);
    tcpFd_ = -1;
  }

  // Handler threads may be blocked in readLine on idle connections;
  // half-close the sockets so they wake and exit.  connMutex_ makes the
  // fd valid for the duration of ::shutdown (handlers close under it too).
  {
    std::lock_guard<std::mutex> lock(connMutex_);
    for (int fd : connFds_) ::shutdown(fd, SHUT_RDWR);
  }
  for (std::thread& t : connThreads_) t.join();
  connThreads_.clear();

  if (watcherThread_.joinable()) watcherThread_.join();
  if (metricsThread_.joinable()) metricsThread_.join();

  emitMetricsEvent("shutdown");
  trace_.emit(service::JsonObject()
                  .put("event", "server_stop")
                  .putDouble("t", trace_.elapsedSeconds())
                  .putDouble("uptime_seconds", uptime_.seconds()));
  shutdownDone_ = true;
}

unsigned Server::inFlight() const {
  std::lock_guard<std::mutex> lock(admitMutex_);
  return executing_;
}

std::size_t Server::queued() const {
  std::lock_guard<std::mutex> lock(admitMutex_);
  return waiting_;
}

void Server::acceptLoop(int listenFd, const char* transport) {
  while (!stopping_.load(std::memory_order_relaxed)) {
    pollfd p{};
    p.fd = listenFd;
    p.events = POLLIN;
    const int ready = ::poll(&p, 1, 200);
    if (ready <= 0) continue;  // timeout or EINTR: re-check stopping_
    const int fd = ::accept(listenFd, nullptr, nullptr);
    if (fd < 0) continue;
    try {
      CMC_FAILPOINT("net.accept");
    } catch (const std::exception&) {
      metrics_.counter("net_accept_failures").inc();
      ::close(fd);
      continue;
    }
    metrics_.counter("connections_accepted").inc();
    std::lock_guard<std::mutex> lock(connMutex_);
    if (stopping_.load(std::memory_order_relaxed)) {
      ::close(fd);
      break;
    }
    connFds_.push_back(fd);
    connThreads_.emplace_back(&Server::handleConnection, this, fd);
  }
  (void)transport;
}

void Server::handleConnection(int fd) {
  metrics_.gauge("connections_open").inc();
  LineSocket sock(fd);
  std::string line;
  bool closeAfter = false;
  while (!closeAfter) {
    LineSocket::ReadResult r;
    try {
      CMC_FAILPOINT("net.read");
      r = sock.readLine(&line);
    } catch (const std::exception& e) {
      // Injected/low-level read failure: drop the connection, never the
      // server.  The peer sees EOF and retries against a healthy socket.
      metrics_.counter("net_read_failures").inc();
      break;
    }
    if (r == LineSocket::ReadResult::Eof ||
        r == LineSocket::ReadResult::Error)
      break;
    if (r == LineSocket::ReadResult::TooLong) {
      metrics_.counter("protocol_errors").inc();
      sock.writeLine(errorResponse(
          "?", kBadRequest,
          "request line exceeds " + std::to_string(kMaxLineBytes) +
              " bytes; closing connection"));
      break;
    }
    if (line.find_first_not_of(" \t") == std::string::npos) continue;
    Request req;
    std::string perror;
    if (!parseRequest(line, opts_.defaults, &req, &perror)) {
      metrics_.counter("protocol_errors").inc();
      if (!sock.writeLine(errorResponse("?", kBadRequest, perror))) break;
      continue;
    }
    metrics_.counter("requests_received").inc();
    switch (req.cmd) {
      case Command::Check:
        handleCheck(sock, req);
        closeAfter = !sock.valid();
        break;
      case Command::Status:
        closeAfter = !sock.writeLine(statusResponse());
        break;
      case Command::Stats:
        closeAfter = !sock.writeLine(statsResponse());
        break;
      case Command::Cancel:
        closeAfter = !sock.writeLine(cancelResponse(req));
        break;
      case Command::Drain:
        requestDrain();
        closeAfter = !sock.writeLine(service::JsonObject()
                                         .putBool("ok", true)
                                         .put("cmd", "DRAIN")
                                         .put("state", "draining")
                                         .str());
        break;
      case Command::CachePut:
        closeAfter = !sock.writeLine(cachePutResponse(req, line));
        break;
      case Command::Topology:
      case Command::Join:
      case Command::Leave:
        closeAfter = !sock.writeLine(errorResponse(
            toString(req.cmd), kBadRequest,
            std::string(toString(req.cmd)) +
                " is a cluster admin command; send it to the coordinator, "
                "not a shard"));
        break;
    }
  }
  {
    // Remove-then-close under the lock so shutdown() never half-closes a
    // recycled fd number.
    std::lock_guard<std::mutex> lock(connMutex_);
    for (auto it = connFds_.begin(); it != connFds_.end(); ++it) {
      if (*it == fd) {
        connFds_.erase(it);
        break;
      }
    }
    sock.close();
  }
  metrics_.gauge("connections_open").dec();
}

void Server::handleCheck(LineSocket& sock, const Request& req) {
  const std::uint64_t serial = ++serial_;
  auto state = std::make_shared<RequestState>();
  state->id = req.id.empty() ? "#" + std::to_string(serial) : req.id;

  service::VerificationJob job;
  job.options = req.options;
  job.only = req.only;
  if (!req.smv.empty()) {
    job.smvText = req.smv;
    job.sourcePath = "<inline>";
    job.name = !req.name.empty() ? req.name
                                 : "inline-" + std::to_string(serial);
  } else {
    std::string path = req.model;
    if (!opts_.modelRoot.empty() && !path.empty() && path.front() != '/')
      path = opts_.modelRoot + "/" + path;
    std::ifstream in(path);
    if (!in) {
      metrics_.counter("checks_rejected_bad_model").inc();
      sock.writeLine(
          errorResponse("CHECK", kBadRequest, "cannot open model: " + path));
      return;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    job.smvText = buf.str();
    job.sourcePath = path;
    job.name = !req.name.empty() ? req.name : jobNameFromPath(path);
  }
  state->job = job.name;

  if (!registerRequest(state)) {
    sock.writeLine(errorResponse(
        "CHECK", kBadRequest,
        "request id '" + state->id + "' is already active"));
    return;
  }

  double waitSeconds = 0.0;
  const Admit decision = admit(*state, &waitSeconds);
  trace_.emit(service::JsonObject()
                  .put("event", "request")
                  .putDouble("t", trace_.elapsedSeconds())
                  .put("id", state->id)
                  .put("job", job.name)
                  .put("outcome", decision == Admit::Admitted
                                      ? "admitted"
                                      : decision == Admit::Busy ? "busy"
                                                                : "draining")
                  .putDouble("queue_wait_seconds", waitSeconds));
  if (decision == Admit::Busy) {
    metrics_.counter("checks_rejected_busy").inc();
    unregisterRequest(state->id);
    sock.writeLine(service::JsonObject()
                       .putBool("ok", false)
                       .put("cmd", "CHECK")
                       .put("id", state->id)
                       .put("code", kBusy)
                       .put("error", "server at capacity; retry with backoff")
                       .putUint("in_flight", inFlight())
                       .putUint("queued", queued())
                       .putUint("capacity", maxInFlight_ + opts_.queueDepth)
                       .str());
    return;
  }
  if (decision == Admit::Draining) {
    metrics_.counter("checks_rejected_draining").inc();
    unregisterRequest(state->id);
    sock.writeLine(errorResponse("CHECK", kDraining,
                                 "server is draining; not accepting checks"));
    return;
  }
  if (decision == Admit::CancelledQueued) {
    // Cancelled while waiting for a slot: answer without ever touching a
    // worker.  The slot count was never incremented.
    metrics_.counter("checks_cancelled").inc();
    unregisterRequest(state->id);
    sock.writeLine(service::JsonObject()
                       .putBool("ok", true)
                       .put("cmd", "CHECK")
                       .put("id", state->id)
                       .put("job", job.name)
                       .put("verdict", "Cancelled")
                       .putBool("cancelled_in_queue", true)
                       .putDouble("queue_wait_seconds", waitSeconds)
                       .str());
    return;
  }

  // Counted only for requests that actually reach a worker, so
  // checks_admitted == checks_completed once the server is idle (the
  // consistency invariant the CI smoke asserts).
  metrics_.counter("checks_admitted").inc();
  metrics_.histogram("admission_wait_seconds").observe(waitSeconds);

  state->running.store(true, std::memory_order_release);
  state->connFd.store(sock.fd(), std::memory_order_release);
  WallTimer runTimer;
  // Learn-enabled checks route through the assume-guarantee engine; its
  // service queries and fallbacks reuse this server's scheduler and cache.
  // (Journal replay does not apply to learned runs: their obligations are
  // derived, not journaled attempt-by-attempt.)
  service::JobReport report =
      job.options.learn
          ? agr::runLearnedJob(svc_, job, agr::LearnOptions{}, &trace_,
                               &metrics_)
          : svc_.run(job, &trace_, journal_, replay_, &state->cancel);
  const double runSeconds = runTimer.seconds();
  state->connFd.store(-1, std::memory_order_release);
  state->running.store(false, std::memory_order_release);

  std::uint64_t holds = 0, fails = 0, undecided = 0;
  for (const service::ObligationOutcome& o : report.obligations) {
    if (o.verdict == service::Verdict::Holds)
      ++holds;
    else if (o.verdict == service::Verdict::Fails)
      ++fails;
    else
      ++undecided;
  }
  service::JsonObject resp;
  resp.putBool("ok", true)
      .put("cmd", "CHECK")
      .put("id", state->id)
      .put("job", report.job)
      .put("verdict", service::toString(report.verdict))
      .putUint("obligations", report.obligations.size())
      .putUint("holds", holds)
      .putUint("fails", fails)
      .putUint("undecided", undecided)
      .putUint("cache_hits", report.cacheHits)
      .putUint("journal_hits", report.journalHits)
      .putDouble("queue_wait_seconds", waitSeconds)
      .putDouble("wall_seconds", report.wallSeconds);
  if (report.obligations.size() == 1) {
    // Single-obligation responses (the coordinator's "only" forwards)
    // additionally carry the outcome as flat fields, so the coordinator
    // merges verdicts without parsing the nested report.  Free-text and
    // nested-document fields stay last, per the flat-line convention.
    const service::ObligationOutcome& o = report.obligations.front();
    resp.put("obligation_id", o.id)
        .put("verdict_source", o.verdictSource)
        .put("rule", o.rule)
        .putDouble("obligation_seconds", o.seconds);
    if (!o.fingerprint.empty()) resp.put("fingerprint", o.fingerprint);
    if (!o.attempts.empty()) resp.put("engine", o.attempts.back().engine);
    if (!o.engineChoiceJson.empty())
      resp.put("engine_choice", o.engineChoiceJson);
    if (!o.error.empty()) resp.put("obligation_error", o.error);
    if (!o.counterexample.empty()) resp.put("counterexample", o.counterexample);
    if (!o.proofJson.empty()) resp.put("proof", o.proofJson);
  }
  // Full report as an escaped string, last so flat extraction of the
  // summary fields above never reads into the nested document.
  resp.put("report", report.toJson());

  // Account for the request and free its slot BEFORE writing the response:
  // a client that has read its verdict and then asks for STATS must see
  // itself completed and not in flight (the consistency invariant the CI
  // smoke asserts), and a queued request may start the moment the verdict
  // is decided, not after this write drains.
  metrics_.counter("checks_completed").inc();
  if (report.verdict == service::Verdict::Cancelled)
    metrics_.counter("checks_cancelled").inc();
  metrics_.histogram("request_seconds").observe(runSeconds);
  releaseSlot();
  unregisterRequest(state->id);

  if (!sock.writeLine(resp.str()))
    metrics_.counter("responses_dropped").inc();
}

std::string Server::statusResponse() {
  std::string active = "[";
  {
    std::lock_guard<std::mutex> lock(requestsMutex_);
    bool first = true;
    for (const auto& [id, state] : requests_) {
      if (!first) active += ", ";
      first = false;
      active += service::JsonObject()
                    .put("id", id)
                    .put("job", state->job)
                    .put("phase", state->running.load() ? "running" : "queued")
                    .putDouble("seconds", state->since.seconds())
                    .str();
    }
  }
  active += "]";
  return service::JsonObject()
      .putBool("ok", true)
      .put("cmd", "STATUS")
      .put("state", drainRequested() ? "draining" : "serving")
      .put("cmc_version", util::versionString())
      .putUint("protocol_rev", kProtocolRevision)
      .putDouble("uptime_seconds", uptime_.seconds())
      .putUint("workers", svc_.threads())
      .putUint("in_flight", inFlight())
      .putUint("queued", queued())
      .putUint("max_inflight", maxInFlight_)
      .putUint("queue_depth", opts_.queueDepth)
      .putUint("pool_queue", svc_.queuedObligations())
      .putRaw("active", active)
      .str();
}

std::string Server::statsResponse() {
  service::JsonObject resp;
  resp.putBool("ok", true)
      .put("cmd", "STATS")
      .put("state", drainRequested() ? "draining" : "serving")
      .put("cmc_version", util::versionString())
      .putUint("protocol_rev", kProtocolRevision)
      .putDouble("uptime_seconds", uptime_.seconds())
      // Flat per-shard load/latency fields the cluster coordinator
      // aggregates into its fleet-wide STATS view.
      .putUint("workers", svc_.threads())
      .putUint("in_flight", inFlight())
      .putUint("queued", queued())
      .putUint("pool_queue", svc_.queuedObligations())
      .putUint("checks_admitted", metrics_.counterValue("checks_admitted"))
      .putUint("checks_completed", metrics_.counterValue("checks_completed"))
      .putUint("checks_rejected_busy",
               metrics_.counterValue("checks_rejected_busy"))
      .putDouble("request_p50_seconds",
                 metrics_.histogramQuantile("request_seconds", 0.5))
      .putDouble("request_p99_seconds",
                 metrics_.histogramQuantile("request_seconds", 0.99))
      .putDouble("obligation_p50_seconds",
                 metrics_.histogramQuantile("obligation_seconds", 0.5))
      .putDouble("obligation_p99_seconds",
                 metrics_.histogramQuantile("obligation_seconds", 0.99));
  if (const service::ObligationCache* cache = svc_.cache()) {
    const service::ObligationCacheStats s = cache->stats();
    resp.putUint("cache_entries", cache->size())
        .putUint("cache_hits", s.hits)
        .putUint("cache_misses", s.misses)
        .putUint("cache_inserts", s.inserts)
        .putUint("cache_evictions", s.evictions)
        .putUint("cache_loaded", s.loaded);
  }
  if (journal_ != nullptr && journal_->isOpen())
    resp.putUint("journal_recorded", journal_->recorded());
  // Both renderings as escaped strings (the flat-line convention), so the
  // response stays one line and the summary fields above extract safely.
  resp.put("metrics", metrics_.toJson());
  resp.put("metrics_text", metrics_.toText());
  return resp.str();
}

std::string Server::cancelResponse(const Request& req) {
  std::shared_ptr<RequestState> state;
  {
    std::lock_guard<std::mutex> lock(requestsMutex_);
    const auto it = requests_.find(req.id);
    if (it != requests_.end()) state = it->second;
  }
  if (!state) {
    return errorResponse("CANCEL", kNotFound,
                         "no active request with id '" + req.id + "'");
  }
  const bool wasRunning = state->running.load(std::memory_order_acquire);
  state->cancel.store(true, std::memory_order_release);
  metrics_.counter("cancels_delivered").inc();
  // A queued request waits on the admission cv; wake it so it can answer.
  admitCv_.notify_all();
  trace_.emit(service::JsonObject()
                  .put("event", "cancel")
                  .putDouble("t", trace_.elapsedSeconds())
                  .put("id", req.id)
                  .put("phase", wasRunning ? "running" : "queued"));
  return service::JsonObject()
      .putBool("ok", true)
      .put("cmd", "CANCEL")
      .put("id", req.id)
      .putBool("delivered", true)
      .put("phase", wasRunning ? "running" : "queued")
      .str();
}

std::string Server::cachePutResponse(const Request& req,
                                     const std::string& line) {
  service::ObligationCache* cache = svc_.cache();
  if (cache == nullptr) {
    return errorResponse("CACHE_PUT", kBadRequest,
                         "the obligation cache is disabled on this shard");
  }
  service::CachedVerdict v;
  std::string verdict;
  service::jsonExtractString(line, "verdict", &verdict);
  v.verdict = verdict == "Fails" ? service::Verdict::Fails
                                 : service::Verdict::Holds;
  service::jsonExtractString(line, "rule", &v.rule);
  service::jsonExtractString(line, "engine", &v.engine);
  service::jsonExtractDouble(line, "seconds", &v.seconds);
  service::jsonExtractString(line, "counterexample", &v.counterexample);
  service::jsonExtractString(line, "proof", &v.proofJson);
  // insert() returns false both for a genuinely uncacheable verdict and
  // for a fingerprint it already held (it updates in place); only the
  // former is an error.  Duplicate puts are routine — every warm run
  // re-replicates its decided obligations.
  const bool hadIt = cache->lookup(req.fingerprint).has_value();
  if (!cache->insert(req.fingerprint, v) && !hadIt) {
    return errorResponse("CACHE_PUT", kInternal,
                         "cache refused the verdict (not cacheable)");
  }
  metrics_.counter("cache_replica_puts").inc();
  trace_.emit(service::JsonObject()
                  .put("event", "cache_replica_put")
                  .putDouble("t", trace_.elapsedSeconds())
                  .put("fingerprint", req.fingerprint)
                  .put("verdict", verdict)
                  .putBool("fresh", !hadIt));
  return service::JsonObject()
      .putBool("ok", true)
      .put("cmd", "CACHE_PUT")
      .put("fingerprint", req.fingerprint)
      .putBool("inserted", !hadIt)
      .str();
}

void Server::watcherLoop() {
  while (true) {
    {
      std::unique_lock<std::mutex> lock(stopMutex_);
      stopCv_.wait_for(lock, std::chrono::milliseconds(100), [&] {
        return stopping_.load(std::memory_order_relaxed);
      });
    }
    if (stopping_.load(std::memory_order_relaxed)) return;
    std::vector<std::pair<int, std::shared_ptr<RequestState>>> running;
    {
      std::lock_guard<std::mutex> lock(requestsMutex_);
      for (const auto& [id, state] : requests_) {
        const int fd = state->connFd.load(std::memory_order_acquire);
        if (fd >= 0 && state->running.load(std::memory_order_acquire))
          running.emplace_back(fd, state);
      }
    }
    for (const auto& [fd, state] : running) {
      pollfd p{};
      p.fd = fd;
      p.events = POLLRDHUP;
      if (::poll(&p, 1, 0) <= 0) continue;
      if ((p.revents & (POLLRDHUP | POLLHUP | POLLERR | POLLNVAL)) == 0)
        continue;
      if (!state->cancel.exchange(true)) {
        metrics_.counter("checks_client_gone").inc();
        trace_.emit(service::JsonObject()
                        .put("event", "client_gone")
                        .putDouble("t", trace_.elapsedSeconds())
                        .put("id", state->id)
                        .put("job", state->job));
      }
    }
  }
}

void Server::metricsLoop() {
  const auto interval = std::chrono::duration<double>(
      opts_.metricsIntervalSeconds);
  while (true) {
    {
      std::unique_lock<std::mutex> lock(stopMutex_);
      stopCv_.wait_for(lock, interval, [&] {
        return stopping_.load(std::memory_order_relaxed);
      });
    }
    if (stopping_.load(std::memory_order_relaxed)) return;
    emitMetricsEvent("interval");
  }
}

void Server::emitMetricsEvent(const char* reason) {
  trace_.emit(service::JsonObject()
                  .put("event", "metrics")
                  .putDouble("t", trace_.elapsedSeconds())
                  .put("reason", reason)
                  .putDouble("uptime_seconds", uptime_.seconds())
                  .putRaw("metrics", metrics_.toJson()));
}

Server::Admit Server::admit(RequestState& state, double* waitSeconds) {
  WallTimer wait;
  std::unique_lock<std::mutex> lock(admitMutex_);
  *waitSeconds = 0.0;
  if (draining_.load(std::memory_order_relaxed)) return Admit::Draining;
  if (executing_ >= maxInFlight_ && waiting_ >= opts_.queueDepth)
    return Admit::Busy;
  if (executing_ >= maxInFlight_) {
    ++waiting_;
    metrics_.gauge("requests_queued").inc();
    admitCv_.wait(lock, [&] {
      return executing_ < maxInFlight_ ||
             state.cancel.load(std::memory_order_relaxed);
    });
    --waiting_;
    metrics_.gauge("requests_queued").dec();
    *waitSeconds = wait.seconds();
    if (state.cancel.load(std::memory_order_relaxed))
      return Admit::CancelledQueued;
  }
  ++executing_;
  metrics_.gauge("requests_in_flight").inc();
  return Admit::Admitted;
}

void Server::releaseSlot() {
  {
    std::lock_guard<std::mutex> lock(admitMutex_);
    --executing_;
    metrics_.gauge("requests_in_flight").dec();
  }
  admitCv_.notify_all();
}

bool Server::registerRequest(const std::shared_ptr<RequestState>& state) {
  std::lock_guard<std::mutex> lock(requestsMutex_);
  return requests_.emplace(state->id, state).second;
}

void Server::unregisterRequest(const std::string& id) {
  std::lock_guard<std::mutex> lock(requestsMutex_);
  requests_.erase(id);
}

}  // namespace cmc::net
