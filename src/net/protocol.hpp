// The cmc wire protocol (net layer): newline-delimited JSON over a
// stream socket (Unix-domain, optionally TCP).  One request line yields
// exactly one response line; requests on one connection are processed in
// order (a CHECK blocks its connection until the verdict), and concurrency
// comes from opening several connections.
//
// Requests are flat JSON objects with a required "cmd":
//   CHECK   {"cmd": "CHECK", "id": "r1", "smv": "<inline SMV text>", ...}
//           or {"cmd": "CHECK", "model": "models/afs1_composed.smv", ...}
//           Options (all optional, defaulting to the server's):
//             "compose" (bool), "deadline_ms" (uint), "node_budget" (uint),
//             "engine" ("auto" | "partitioned" | "monolithic" | "bes" |
//                       "race"),
//             "no_retry" (bool), "trace_force" (bool),
//             "cluster" (uint), "reorder" (bool), "name" (job name)
//   STATUS  {"cmd": "STATUS"}
//   STATS   {"cmd": "STATS"}
//   CANCEL  {"cmd": "CANCEL", "id": "r1"}
//   DRAIN   {"cmd": "DRAIN"}
//
// Cluster administration (rev 3; the coordinator answers these, a plain
// shard refuses them with BAD_REQUEST):
//   TOPOLOGY {"cmd": "TOPOLOGY"}                 — list the live roster
//   JOIN     {"cmd": "JOIN", "shard": "s3", "socket": "/run/s3.sock"}
//            (or "tcp": <port> instead of "socket") — add a shard after a
//            version/protocol handshake
//   LEAVE    {"cmd": "LEAVE", "shard": "s3"}     — graceful decommission
// Replica write-through (rev 3; a *shard* answers this, the coordinator
// refuses it):
//   CACHE_PUT {"cmd": "CACHE_PUT", "fingerprint": ..., "verdict":
//             "Holds"|"Fails", "rule": ..., "engine": ..., "seconds": ...,
//             "counterexample"?: ..., "proof"?: ...} — insert one decided
//             verdict into the shard's obligation cache
//
// Responses always carry "ok" (bool) and "cmd".  Failures carry "code" —
// one of BAD_REQUEST, BUSY, DRAINING, NOT_FOUND, INTERNAL — plus a
// human-readable "error".  A successful CHECK response embeds the full
// JobReport JSON as an *escaped string* field "report" (the repo's
// convention for nesting documents inside flat lines, as with journal
// proof certificates), next to flat summary fields for cheap consumers.
//
// Framing limits: a request line longer than kMaxLineBytes is a protocol
// error — the server responds BAD_REQUEST and closes the connection
// (an unbounded line is indistinguishable from a non-protocol peer).
#pragma once

#include <cstdint>
#include <string>

#include "service/job.hpp"

namespace cmc::net {

/// Upper bound on one protocol line, requests and responses alike.  Large
/// enough for a multi-megabyte inline SMV model; small enough that a
/// garbage peer cannot balloon server memory.
constexpr std::size_t kMaxLineBytes = 8u << 20;

/// Wire protocol revision, stamped (with CMC_VERSION) into STATUS and
/// STATS responses.  Bumped whenever a verb or field changes in a way a
/// peer must understand — rev 2 added the single-obligation CHECK filter
/// ("only") the cluster coordinator forwards on; rev 3 added the cluster
/// admin verbs (TOPOLOGY/JOIN/LEAVE) and the CACHE_PUT replica
/// write-through.  The coordinator refuses shards whose revision differs
/// from its own: an old shard would silently ignore "only" (wrong, not
/// slow) or drop replica puts (silently un-replicated).
constexpr std::uint64_t kProtocolRevision = 3;

/// Error codes of failure responses.
inline constexpr const char* kBadRequest = "BAD_REQUEST";
inline constexpr const char* kBusy = "BUSY";
inline constexpr const char* kDraining = "DRAINING";
inline constexpr const char* kNotFound = "NOT_FOUND";
inline constexpr const char* kInternal = "INTERNAL";

enum class Command {
  Check,
  Status,
  Stats,
  Cancel,
  Drain,
  Topology,
  Join,
  Leave,
  CachePut,
};

const char* toString(Command c) noexcept;
bool commandFromString(std::string_view text, Command* out) noexcept;

struct Request {
  Command cmd = Command::Status;
  std::string id;     ///< client-chosen request id (CHECK; required: CANCEL)
  std::string name;   ///< job name (CHECK; defaults from model path / id)
  std::string model;  ///< server-side .smv path (CHECK)
  std::string smv;    ///< inline SMV program text (CHECK)
  /// CHECK only: restrict the job to the one obligation with this id
  /// ("<target>/<spec name>").  The cluster coordinator forwards each
  /// routed obligation as a CHECK with "only"; an id that matches nothing
  /// yields an Error verdict, not a silent full run.
  std::string only;
  service::JobOptions options;  ///< seeded from the server defaults
  // Cluster admin fields (JOIN/LEAVE).
  std::string shard;        ///< roster name of the shard to add/remove
  std::string shardSocket;  ///< JOIN: Unix-domain endpoint (or shardTcp)
  int shardTcp = -1;        ///< JOIN: loopback TCP port (or shardSocket)
  /// CACHE_PUT: the content fingerprint being written through.  The
  /// remaining verdict fields (verdict/rule/engine/seconds/
  /// counterexample/proof) stay in the raw line; the shard extracts them
  /// with the same parsers the disk store uses.
  std::string fingerprint;
};

/// Parse one request line.  `defaults` seeds Request::options; fields
/// present in the request overlay them.  Returns false with a message on
/// anything malformed: not a JSON object, unknown/missing cmd, a CHECK
/// with neither or both of model/smv, a CANCEL without id, or an option
/// field of the wrong type.
bool parseRequest(const std::string& line, const service::JobOptions& defaults,
                  Request* out, std::string* error);

/// One-line JSON failure response: {"ok": false, "cmd": ..., "code": ...,
/// "error": ...}.  `cmd` is the command name ("?" when the request was too
/// malformed to tell).
std::string errorResponse(const std::string& cmd, const std::string& code,
                          const std::string& message);

/// A line-oriented stream socket: buffers reads, splits on '\n', enforces
/// the line cap, and writes whole lines with MSG_NOSIGNAL (a dead peer
/// yields an error return, never SIGPIPE).  Owns the fd.  Used by the
/// server's connection handlers, the cmc submit client, and the protocol
/// tests.
class LineSocket {
 public:
  explicit LineSocket(int fd) : fd_(fd) {}
  ~LineSocket() { close(); }

  LineSocket(LineSocket&& other) noexcept
      : fd_(other.fd_), buffer_(std::move(other.buffer_)) {
    other.fd_ = -1;
  }
  LineSocket& operator=(LineSocket&&) = delete;
  LineSocket(const LineSocket&) = delete;
  LineSocket& operator=(const LineSocket&) = delete;

  enum class ReadResult {
    Line,     ///< a complete line is in *line (terminator stripped)
    Eof,      ///< orderly shutdown (or a half-closed, line-less tail)
    TooLong,  ///< peer exceeded kMaxLineBytes without a newline
    Error,    ///< recv failed
  };

  /// Read the next line (blocking).  A final unterminated fragment before
  /// EOF is reported as Eof — a torn request is never parsed.
  ReadResult readLine(std::string* line);

  /// Write `line` plus '\n' (blocking, complete).  False on any failure.
  bool writeLine(const std::string& line);

  int fd() const noexcept { return fd_; }
  bool valid() const noexcept { return fd_ >= 0; }
  void close() noexcept;

 private:
  int fd_ = -1;
  std::string buffer_;  ///< bytes received beyond the last returned line
};

}  // namespace cmc::net
