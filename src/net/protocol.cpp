#include "net/protocol.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>

#include "service/journal.hpp"
#include "service/trace_log.hpp"

namespace cmc::net {

const char* toString(Command c) noexcept {
  switch (c) {
    case Command::Check: return "CHECK";
    case Command::Status: return "STATUS";
    case Command::Stats: return "STATS";
    case Command::Cancel: return "CANCEL";
    case Command::Drain: return "DRAIN";
    case Command::Topology: return "TOPOLOGY";
    case Command::Join: return "JOIN";
    case Command::Leave: return "LEAVE";
    case Command::CachePut: return "CACHE_PUT";
  }
  return "?";
}

bool commandFromString(std::string_view text, Command* out) noexcept {
  static constexpr Command kAll[] = {
      Command::Check, Command::Status,   Command::Stats,
      Command::Cancel, Command::Drain,   Command::Topology,
      Command::Join,   Command::Leave,   Command::CachePut};
  for (Command c : kAll) {
    if (text == toString(c)) {
      *out = c;
      return true;
    }
  }
  return false;
}

namespace {

/// True when `key` appears as a JSON key in the line ("key": ...).  The
/// extractors return false both for "absent" and "wrong type"; admission
/// of a typed option must distinguish the two so a request carrying
/// `"deadline_ms": "soon"` is rejected instead of silently defaulted.
bool hasKey(const std::string& line, const std::string& key) {
  return line.find("\"" + key + "\": ") != std::string::npos;
}

bool overlayUint(const std::string& line, const std::string& key,
                 std::uint64_t* out, std::string* error) {
  if (!hasKey(line, key)) return true;
  if (!service::jsonExtractUint(line, key, out)) {
    *error = "field '" + key + "' must be a non-negative integer";
    return false;
  }
  return true;
}

bool overlayBool(const std::string& line, const std::string& key, bool* out,
                 std::string* error) {
  if (!hasKey(line, key)) return true;
  if (!service::jsonExtractBool(line, key, out)) {
    *error = "field '" + key + "' must be true or false";
    return false;
  }
  return true;
}

}  // namespace

bool parseRequest(const std::string& line, const service::JobOptions& defaults,
                  Request* out, std::string* error) {
  // Cheap well-formedness gate; the field extractors do the real parsing.
  std::size_t first = line.find_first_not_of(" \t\r");
  std::size_t last = line.find_last_not_of(" \t\r");
  if (first == std::string::npos || line[first] != '{' || line[last] != '}') {
    *error = "request is not a JSON object";
    return false;
  }
  std::string cmdText;
  if (!service::jsonExtractString(line, "cmd", &cmdText)) {
    *error = "missing or malformed 'cmd'";
    return false;
  }
  Request req;
  if (!commandFromString(cmdText, &req.cmd)) {
    *error = "unknown command '" + cmdText +
             "' (expected CHECK, STATUS, STATS, CANCEL, DRAIN, TOPOLOGY, "
             "JOIN, LEAVE, or CACHE_PUT)";
    return false;
  }
  req.options = defaults;
  service::jsonExtractString(line, "id", &req.id);
  service::jsonExtractString(line, "name", &req.name);
  service::jsonExtractString(line, "model", &req.model);
  service::jsonExtractString(line, "smv", &req.smv);

  switch (req.cmd) {
    case Command::Check: {
      if (req.model.empty() == req.smv.empty()) {
        *error = req.model.empty()
                     ? "CHECK needs a 'model' path or inline 'smv' text"
                     : "CHECK takes either 'model' or 'smv', not both";
        return false;
      }
      std::uint64_t deadlineMs = 0;
      const bool hadDeadline = hasKey(line, "deadline_ms");
      if (!overlayUint(line, "deadline_ms", &deadlineMs, error) ||
          !overlayUint(line, "node_budget", &req.options.limits.nodeBudget,
                       error) ||
          !overlayUint(line, "cluster", &req.options.clusterThreshold,
                       error) ||
          !overlayBool(line, "compose", &req.options.compose, error) ||
          !overlayBool(line, "reorder", &req.options.reorderBeforeCheck,
                       error) ||
          !overlayBool(line, "trace_force", &req.options.traceForce,
                       error) ||
          !overlayBool(line, "learn", &req.options.learn, error)) {
        return false;
      }
      if (hadDeadline) {
        req.options.limits.deadlineSeconds =
            static_cast<double>(deadlineMs) / 1e3;
      }
      service::jsonExtractString(line, "only", &req.only);
      bool noRetry = !req.options.retryOtherEngine;
      if (!overlayBool(line, "no_retry", &noRetry, error)) return false;
      req.options.retryOtherEngine = !noRetry;
      if (hasKey(line, "engine")) {
        std::string engine;
        service::jsonExtractString(line, "engine", &engine);
        if (!symbolic::engineModeFromString(engine, &req.options.engine)) {
          *error =
              "field 'engine' must be 'auto', 'partitioned', "
              "'monolithic', 'bes', or 'race'";
          return false;
        }
      }
      break;
    }
    case Command::Cancel:
      if (req.id.empty()) {
        *error = "CANCEL needs the 'id' of the request to cancel";
        return false;
      }
      break;
    case Command::Join: {
      service::jsonExtractString(line, "shard", &req.shard);
      if (req.shard.empty()) {
        *error = "JOIN needs the roster 'shard' name to add";
        return false;
      }
      service::jsonExtractString(line, "socket", &req.shardSocket);
      std::uint64_t tcp = 0;
      if (hasKey(line, "tcp")) {
        if (!service::jsonExtractUint(line, "tcp", &tcp) || tcp < 1 ||
            tcp > 65535) {
          *error = "field 'tcp' must be a port in 1..65535";
          return false;
        }
        req.shardTcp = static_cast<int>(tcp);
      }
      if (req.shardSocket.empty() == (req.shardTcp < 0)) {
        *error = req.shardSocket.empty()
                     ? "JOIN needs a 'socket' path or a 'tcp' port"
                     : "JOIN takes either 'socket' or 'tcp', not both";
        return false;
      }
      break;
    }
    case Command::Leave:
      service::jsonExtractString(line, "shard", &req.shard);
      if (req.shard.empty()) {
        *error = "LEAVE needs the roster 'shard' name to remove";
        return false;
      }
      break;
    case Command::CachePut: {
      service::jsonExtractString(line, "fingerprint", &req.fingerprint);
      if (req.fingerprint.empty()) {
        *error = "CACHE_PUT needs the obligation 'fingerprint'";
        return false;
      }
      std::string verdict;
      service::jsonExtractString(line, "verdict", &verdict);
      if (verdict != "Holds" && verdict != "Fails") {
        // Only decided verdicts belong in the cache tier; replicating an
        // Error would pin a transient failure fleet-wide.
        *error = "CACHE_PUT 'verdict' must be 'Holds' or 'Fails'";
        return false;
      }
      break;
    }
    case Command::Status:
    case Command::Stats:
    case Command::Drain:
    case Command::Topology:
      break;
  }
  *out = std::move(req);
  return true;
}

std::string errorResponse(const std::string& cmd, const std::string& code,
                          const std::string& message) {
  return service::JsonObject()
      .putBool("ok", false)
      .put("cmd", cmd)
      .put("code", code)
      .put("error", message)
      .str();
}

void LineSocket::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

LineSocket::ReadResult LineSocket::readLine(std::string* line) {
  while (true) {
    const std::size_t at = buffer_.find('\n');
    if (at != std::string::npos) {
      if (at > kMaxLineBytes) return ReadResult::TooLong;
      line->assign(buffer_, 0, at);
      if (!line->empty() && line->back() == '\r') line->pop_back();
      buffer_.erase(0, at + 1);
      return ReadResult::Line;
    }
    if (buffer_.size() > kMaxLineBytes) return ReadResult::TooLong;
    if (fd_ < 0) return ReadResult::Error;
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n == 0) {
      // Orderly shutdown.  A trailing unterminated fragment is a torn
      // request from a dying peer: report Eof, never a parseable line.
      return ReadResult::Eof;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      return ReadResult::Error;
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

bool LineSocket::writeLine(const std::string& line) {
  if (fd_ < 0) return false;
  std::string data = line;
  data.push_back('\n');
  std::size_t done = 0;
  while (done < data.size()) {
    const ssize_t n =
        ::send(fd_, data.data() + done, data.size() - done, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace cmc::net
