// Client side of the cmc wire protocol: connect to a serving daemon over
// its Unix-domain socket (or loopback TCP) and exchange request/response
// lines.  Used by `cmc submit` and by the protocol tests; deliberately
// thin — request construction and response interpretation live with the
// caller, which knows which fields it wants.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "net/protocol.hpp"

namespace cmc::net {

class Client {
 public:
  Client() = default;

  /// Connect to a Unix-domain / loopback-TCP server.  False with a message
  /// on failure (no such socket, connection refused, ...).
  bool connectUnix(const std::string& socketPath, std::string* error);
  bool connectTcp(int port, std::string* error);

  /// Re-dial the endpoint of the last connect attempt (fresh socket).
  /// False when nothing was ever dialed, or the dial fails.  The retry
  /// path of `cmc submit` uses this after a transport failure.
  bool reconnect(std::string* error);

  /// Called before each retry sleep: (why, attempt 1-based, delay ms).
  using RetryObserver =
      std::function<void(const std::string&, int, int)>;

  /// Connect with up to `maxRetries` retries on failure (connection
  /// refused / no such socket while a daemon restarts), sleeping
  /// backoffMs(attempt, baseMs) between attempts.  Exactly one of
  /// socketPath / tcpPort (>= 0) selects the transport.  False with the
  /// last dial error once the budget is exhausted.
  bool connectRetrying(const std::string& socketPath, int tcpPort,
                       int maxRetries, int baseMs, std::string* error,
                       const RetryObserver& onRetry = {});

  /// Send one request line, retrying transient failures up to
  /// `maxRetries` times with backoffMs(attempt, baseMs) sleeps:
  ///   - transport failures (ECONNRESET / EOF while a daemon restarts)
  ///     reconnect() first, so a restarted server on the same endpoint
  ///     picks the request up;
  ///   - BUSY / DRAINING responses retry on the live connection.
  /// True whenever a response line was obtained — including a final
  /// BUSY/DRAINING after the budget runs out, so the caller's exit-code
  /// mapping (refusal vs transport death) is preserved.  False only when
  /// every attempt died in transport.
  bool requestWithRetry(const std::string& line, int maxRetries, int baseMs,
                        std::string* response, std::string* error,
                        const RetryObserver& onRetry = {});

  bool connected() const noexcept { return sock_ != nullptr && sock_->valid(); }

  /// Send one request line and read the one response line the protocol
  /// promises.  False when the send fails or the server closes without
  /// responding (*error says which).
  bool request(const std::string& line, std::string* response,
               std::string* error);

  /// Send without waiting for the response (tests that disconnect
  /// mid-CHECK).  False on a failed send.
  bool send(const std::string& line);

  /// Read the next response line (blocking).  False on EOF/error.
  bool readResponse(std::string* response, std::string* error);

  void close();

  /// The underlying socket, for tests that need half-close semantics.
  LineSocket* socket() noexcept { return sock_.get(); }

  /// Jittered exponential backoff delay before retry `attempt` (0-based):
  /// uniform in [c/2, c] where c = baseMs·2^attempt, the exponent capped
  /// at 10 and the whole delay at 30 s.  Full-range jitter on the upper
  /// half desynchronizes a thundering herd of rejected submitters without
  /// ever collapsing the delay to ~0.  `baseMs <= 0` returns 0.
  static int backoffMs(int attempt, int baseMs);

 private:
  std::unique_ptr<LineSocket> sock_;
  /// Endpoint of the last connect attempt, for reconnect().
  std::string unixPath_;
  int tcpPort_ = -1;
};

}  // namespace cmc::net
