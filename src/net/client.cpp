#include "net/client.hpp"

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <random>
#include <thread>

#include "service/journal.hpp"

namespace cmc::net {

namespace {

std::string errnoMessage(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

}  // namespace

bool Client::connectUnix(const std::string& socketPath, std::string* error) {
  unixPath_ = socketPath;
  tcpPort_ = -1;
  sockaddr_un addr{};
  if (socketPath.size() >= sizeof addr.sun_path) {
    *error = "socket path too long: " + socketPath;
    return false;
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    *error = errnoMessage("socket(AF_UNIX)");
    return false;
  }
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, socketPath.c_str(), socketPath.size() + 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    *error = errnoMessage("connect " + socketPath);
    ::close(fd);
    return false;
  }
  sock_ = std::make_unique<LineSocket>(fd);
  return true;
}

bool Client::connectTcp(int port, std::string* error) {
  unixPath_.clear();
  tcpPort_ = port;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    *error = errnoMessage("socket(AF_INET)");
    return false;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    *error = errnoMessage("connect 127.0.0.1:" + std::to_string(port));
    ::close(fd);
    return false;
  }
  sock_ = std::make_unique<LineSocket>(fd);
  return true;
}

bool Client::request(const std::string& line, std::string* response,
                     std::string* error) {
  if (!send(line)) {
    *error = "send failed (server gone?)";
    return false;
  }
  return readResponse(response, error);
}

bool Client::send(const std::string& line) {
  return sock_ != nullptr && sock_->writeLine(line);
}

bool Client::readResponse(std::string* response, std::string* error) {
  if (sock_ == nullptr) {
    *error = "not connected";
    return false;
  }
  switch (sock_->readLine(response)) {
    case LineSocket::ReadResult::Line:
      return true;
    case LineSocket::ReadResult::Eof:
      *error = "server closed the connection before responding";
      return false;
    case LineSocket::ReadResult::TooLong:
      *error = "response line exceeds the protocol limit";
      return false;
    case LineSocket::ReadResult::Error:
      *error = errnoMessage("recv");
      return false;
  }
  *error = "unreachable";
  return false;
}

bool Client::reconnect(std::string* error) {
  if (!unixPath_.empty()) return connectUnix(unixPath_, error);
  if (tcpPort_ >= 0) return connectTcp(tcpPort_, error);
  *error = "reconnect before any connect";
  return false;
}

bool Client::connectRetrying(const std::string& socketPath, int tcpPort,
                             int maxRetries, int baseMs, std::string* error,
                             const RetryObserver& onRetry) {
  for (int attempt = 0;; ++attempt) {
    const bool ok = !socketPath.empty() ? connectUnix(socketPath, error)
                                        : connectTcp(tcpPort, error);
    if (ok) return true;
    if (attempt >= maxRetries) return false;
    const int delay = backoffMs(attempt, baseMs);
    if (onRetry) onRetry(*error, attempt + 1, delay);
    std::this_thread::sleep_for(std::chrono::milliseconds(delay));
  }
}

bool Client::requestWithRetry(const std::string& line, int maxRetries,
                              int baseMs, std::string* response,
                              std::string* error,
                              const RetryObserver& onRetry) {
  for (int attempt = 0;; ++attempt) {
    std::string resp;
    std::string why;
    const bool transportOk = request(line, &resp, &why);
    bool retryable = !transportOk;
    if (transportOk) {
      bool ok = true;
      service::jsonExtractBool(resp, "ok", &ok);
      std::string code;
      if (!ok) service::jsonExtractString(resp, "code", &code);
      if (!ok && (code == kBusy || code == kDraining)) {
        retryable = true;
        why = "server answered " + code;
      }
    }
    if (!retryable) {
      *response = resp;
      return true;
    }
    if (attempt >= maxRetries) {
      // Out of budget.  A refusal response still reaches the caller (its
      // exit-code mapping depends on seeing the code); only transport
      // death reports failure.
      if (transportOk) {
        *response = resp;
        return true;
      }
      *error = why;
      return false;
    }
    const int delay = backoffMs(attempt, baseMs);
    if (onRetry) onRetry(why, attempt + 1, delay);
    std::this_thread::sleep_for(std::chrono::milliseconds(delay));
    if (!transportOk) {
      std::string reconnectError;
      // A failed re-dial is not fatal here: the next request() fails in
      // send and the loop retries (the daemon may still be restarting).
      reconnect(&reconnectError);
    }
  }
}

int Client::backoffMs(int attempt, int baseMs) {
  if (baseMs <= 0) return 0;
  const int exponent = std::clamp(attempt, 0, 10);
  const std::int64_t ceiling =
      std::min<std::int64_t>(static_cast<std::int64_t>(baseMs) << exponent,
                             30000);
  static thread_local std::mt19937_64 rng{std::random_device{}()};
  std::uniform_int_distribution<std::int64_t> jitter(ceiling - ceiling / 2,
                                                     ceiling);
  return static_cast<int>(jitter(rng));
}

void Client::close() {
  if (sock_ != nullptr) sock_->close();
}

}  // namespace cmc::net
