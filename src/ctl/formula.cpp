#include "ctl/formula.hpp"

#include <sstream>

#include "util/common.hpp"

namespace cmc::ctl {

namespace {

FormulaPtr make(Op op, std::string atom = {}, FormulaPtr lhs = nullptr,
                FormulaPtr rhs = nullptr) {
  return std::make_shared<const Formula>(op, std::move(atom), std::move(lhs),
                                         std::move(rhs));
}

}  // namespace

FormulaPtr mkTrue() {
  static const FormulaPtr t = make(Op::True);
  return t;
}

FormulaPtr mkFalse() {
  static const FormulaPtr f = make(Op::False);
  return f;
}

FormulaPtr atom(const std::string& name) { return make(Op::Atom, name); }

FormulaPtr eq(const std::string& var, const std::string& value) {
  return make(Op::Atom, var + "=" + value);
}

FormulaPtr neq(const std::string& var, const std::string& value) {
  return mkNot(eq(var, value));
}

FormulaPtr mkNot(FormulaPtr f) {
  CMC_ASSERT(f != nullptr);
  return make(Op::Not, {}, std::move(f));
}

FormulaPtr mkAnd(FormulaPtr a, FormulaPtr b) {
  CMC_ASSERT(a != nullptr && b != nullptr);
  return make(Op::And, {}, std::move(a), std::move(b));
}

FormulaPtr mkOr(FormulaPtr a, FormulaPtr b) {
  CMC_ASSERT(a != nullptr && b != nullptr);
  return make(Op::Or, {}, std::move(a), std::move(b));
}

FormulaPtr mkImplies(FormulaPtr a, FormulaPtr b) {
  CMC_ASSERT(a != nullptr && b != nullptr);
  return make(Op::Implies, {}, std::move(a), std::move(b));
}

FormulaPtr mkIff(FormulaPtr a, FormulaPtr b) {
  CMC_ASSERT(a != nullptr && b != nullptr);
  return make(Op::Iff, {}, std::move(a), std::move(b));
}

FormulaPtr EX(FormulaPtr f) { return make(Op::EX, {}, std::move(f)); }
FormulaPtr AX(FormulaPtr f) { return make(Op::AX, {}, std::move(f)); }
FormulaPtr EF(FormulaPtr f) { return make(Op::EF, {}, std::move(f)); }
FormulaPtr AF(FormulaPtr f) { return make(Op::AF, {}, std::move(f)); }
FormulaPtr EG(FormulaPtr f) { return make(Op::EG, {}, std::move(f)); }
FormulaPtr AG(FormulaPtr f) { return make(Op::AG, {}, std::move(f)); }

FormulaPtr EU(FormulaPtr a, FormulaPtr b) {
  return make(Op::EU, {}, std::move(a), std::move(b));
}

FormulaPtr AU(FormulaPtr a, FormulaPtr b) {
  return make(Op::AU, {}, std::move(a), std::move(b));
}

FormulaPtr conj(const std::vector<FormulaPtr>& fs) {
  if (fs.empty()) return mkTrue();
  FormulaPtr acc = fs.front();
  for (std::size_t i = 1; i < fs.size(); ++i) acc = mkAnd(acc, fs[i]);
  return acc;
}

FormulaPtr disj(const std::vector<FormulaPtr>& fs) {
  if (fs.empty()) return mkFalse();
  FormulaPtr acc = fs.front();
  for (std::size_t i = 1; i < fs.size(); ++i) acc = mkOr(acc, fs[i]);
  return acc;
}

bool isPropositional(const FormulaPtr& f) {
  CMC_ASSERT(f != nullptr);
  switch (f->op()) {
    case Op::True:
    case Op::False:
    case Op::Atom:
      return true;
    case Op::Not:
      return isPropositional(f->lhs());
    case Op::And:
    case Op::Or:
    case Op::Implies:
    case Op::Iff:
      return isPropositional(f->lhs()) && isPropositional(f->rhs());
    default:
      return false;
  }
}

bool equal(const FormulaPtr& a, const FormulaPtr& b) {
  if (a == b) return true;
  if (a == nullptr || b == nullptr) return false;
  if (a->op() != b->op()) return false;
  switch (a->op()) {
    case Op::True:
    case Op::False:
      return true;
    case Op::Atom:
      return a->atom() == b->atom();
    case Op::Not:
    case Op::EX:
    case Op::AX:
    case Op::EF:
    case Op::AF:
    case Op::EG:
    case Op::AG:
      return equal(a->lhs(), b->lhs());
    default:
      return equal(a->lhs(), b->lhs()) && equal(a->rhs(), b->rhs());
  }
}

namespace {

int precedence(Op op) {
  switch (op) {
    case Op::Iff:
      return 1;
    case Op::Implies:
      return 2;
    case Op::Or:
      return 3;
    case Op::And:
      return 4;
    case Op::True:
    case Op::False:
    case Op::Atom:
    case Op::EU:
    case Op::AU:
      return 7;  // self-delimiting; never needs parentheses
    default:
      return 5;  // prefix unary operators
  }
}

void print(const FormulaPtr& f, std::ostringstream& out, int parentPrec) {
  const int prec = precedence(f->op());
  const bool paren = prec < parentPrec;
  if (paren) out << '(';
  switch (f->op()) {
    case Op::True:
      out << "TRUE";
      break;
    case Op::False:
      out << "FALSE";
      break;
    case Op::Atom:
      out << f->atom();
      break;
    case Op::Not:
      out << '!';
      print(f->lhs(), out, 6);
      break;
    case Op::And:
      print(f->lhs(), out, prec);
      out << " & ";
      print(f->rhs(), out, prec + 1);
      break;
    case Op::Or:
      print(f->lhs(), out, prec);
      out << " | ";
      print(f->rhs(), out, prec + 1);
      break;
    case Op::Implies:
      print(f->lhs(), out, prec + 1);  // right-associative
      out << " -> ";
      print(f->rhs(), out, prec);
      break;
    case Op::Iff:
      print(f->lhs(), out, prec + 1);
      out << " <-> ";
      print(f->rhs(), out, prec + 1);
      break;
    case Op::EX:
    case Op::AX:
    case Op::EF:
    case Op::AF:
    case Op::EG:
    case Op::AG: {
      static const char* names[] = {"EX", "AX", "EF", "AF", "EG", "AG"};
      out << names[static_cast<int>(f->op()) - static_cast<int>(Op::EX)]
          << ' ';
      print(f->lhs(), out, 6);
      break;
    }
    case Op::EU:
      out << "E[";
      print(f->lhs(), out, 0);
      out << " U ";
      print(f->rhs(), out, 0);
      out << ']';
      break;
    case Op::AU:
      out << "A[";
      print(f->lhs(), out, 0);
      out << " U ";
      print(f->rhs(), out, 0);
      out << ']';
      break;
  }
  if (paren) out << ')';
}

void collectAtomsRec(const FormulaPtr& f, std::set<std::string>& out) {
  if (f == nullptr) return;
  if (f->op() == Op::Atom) out.insert(f->atom());
  collectAtomsRec(f->lhs(), out);
  collectAtomsRec(f->rhs(), out);
}

}  // namespace

std::string toString(const FormulaPtr& f) {
  CMC_ASSERT(f != nullptr);
  std::ostringstream out;
  print(f, out, 0);
  return out.str();
}

std::set<std::string> collectAtoms(const FormulaPtr& f) {
  std::set<std::string> out;
  collectAtomsRec(f, out);
  return out;
}

std::set<std::string> collectVariables(const FormulaPtr& f) {
  std::set<std::string> out;
  for (const std::string& a : collectAtoms(f)) {
    const std::size_t pos = a.find('=');
    out.insert(pos == std::string::npos ? a : a.substr(0, pos));
  }
  return out;
}

FormulaPtr desugar(const FormulaPtr& f) {
  CMC_ASSERT(f != nullptr);
  switch (f->op()) {
    case Op::True:
    case Op::False:
    case Op::Atom:
      return f;
    case Op::Not:
      return mkNot(desugar(f->lhs()));
    case Op::And:
      return mkAnd(desugar(f->lhs()), desugar(f->rhs()));
    case Op::Or:
      // f | g  =  !(!f & !g)
      return mkNot(mkAnd(mkNot(desugar(f->lhs())), mkNot(desugar(f->rhs()))));
    case Op::Implies:
      // f -> g  =  !(f & !g)
      return mkNot(mkAnd(desugar(f->lhs()), mkNot(desugar(f->rhs()))));
    case Op::Iff: {
      FormulaPtr a = desugar(f->lhs());
      FormulaPtr b = desugar(f->rhs());
      // a <-> b  =  !(a & !b) & !(b & !a)
      return mkAnd(mkNot(mkAnd(a, mkNot(b))), mkNot(mkAnd(b, mkNot(a))));
    }
    case Op::EX:
      return EX(desugar(f->lhs()));
    case Op::AX:
      return AX(desugar(f->lhs()));
    case Op::EF:
      return EU(mkTrue(), desugar(f->lhs()));
    case Op::AF:
      return AU(mkTrue(), desugar(f->lhs()));
    case Op::AG:
      // AGf = !E(true U !f)
      return mkNot(EU(mkTrue(), mkNot(desugar(f->lhs()))));
    case Op::EG:
      // EGf = !A(true U !f)
      return mkNot(AU(mkTrue(), mkNot(desugar(f->lhs()))));
    case Op::EU:
      return EU(desugar(f->lhs()), desugar(f->rhs()));
    case Op::AU:
      return AU(desugar(f->lhs()), desugar(f->rhs()));
  }
  throw Error("desugar: unreachable");
}

Restriction Restriction::trivial() {
  return Restriction{mkTrue(), {mkTrue()}};
}

Restriction Restriction::withFairness(FormulaPtr f) const {
  Restriction r = *this;
  r.fairness.push_back(std::move(f));
  return r;
}

Restriction Restriction::withInit(FormulaPtr i) const {
  Restriction r = *this;
  r.init = mkAnd(r.init, std::move(i));
  return r;
}

bool Restriction::isTrivial() const {
  if (init == nullptr || init->op() != Op::True) return false;
  for (const FormulaPtr& f : fairness) {
    if (f->op() != Op::True) return false;
  }
  return true;
}

std::string Restriction::toString() const {
  std::ostringstream out;
  out << '(' << ctl::toString(init != nullptr ? init : mkTrue()) << ", {";
  for (std::size_t i = 0; i < fairness.size(); ++i) {
    if (i != 0) out << ", ";
    out << ctl::toString(fairness[i]);
  }
  if (fairness.empty()) out << "TRUE";
  out << "})";
  return out.str();
}

}  // namespace cmc::ctl
