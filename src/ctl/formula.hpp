// CTL abstract syntax (paper §2.1) and the restriction index r = (I, F)
// (paper §2.2): an initial-condition formula plus a set of fairness
// constraints that must hold infinitely often along every fair path.
//
// Formulas are immutable trees shared through shared_ptr<const Formula>.
// Atoms are strings; a checker resolves them against its model: a bare name
// is an atomic proposition / boolean variable, and "var=value" compares a
// finite-domain variable with one of its declared values (the boolean
// encoding of §3.4 happens inside the symbolic checker).
#pragma once

#include <memory>
#include <set>
#include <string>
#include <vector>

namespace cmc::ctl {

enum class Op {
  True,
  False,
  Atom,
  Not,
  And,
  Or,
  Implies,
  Iff,
  EX,
  AX,
  EF,
  AF,
  EG,
  AG,
  EU,  ///< E[lhs U rhs]
  AU,  ///< A[lhs U rhs]
};

class Formula;
using FormulaPtr = std::shared_ptr<const Formula>;

class Formula {
 public:
  Formula(Op op, std::string atom, FormulaPtr lhs, FormulaPtr rhs)
      : op_(op), atom_(std::move(atom)), lhs_(std::move(lhs)),
        rhs_(std::move(rhs)) {}

  Op op() const noexcept { return op_; }
  /// Atom text ("x" or "var=value"); empty unless op() == Op::Atom.
  const std::string& atom() const noexcept { return atom_; }
  const FormulaPtr& lhs() const noexcept { return lhs_; }
  const FormulaPtr& rhs() const noexcept { return rhs_; }

 private:
  Op op_;
  std::string atom_;
  FormulaPtr lhs_;
  FormulaPtr rhs_;
};

// ---- Constructors ----------------------------------------------------------

FormulaPtr mkTrue();
FormulaPtr mkFalse();
/// Bare atomic proposition `name` (boolean variable).
FormulaPtr atom(const std::string& name);
/// Comparison atom `var = value` for finite-domain variables.
FormulaPtr eq(const std::string& var, const std::string& value);
/// Sugar for !(var = value).
FormulaPtr neq(const std::string& var, const std::string& value);
FormulaPtr mkNot(FormulaPtr f);
FormulaPtr mkAnd(FormulaPtr a, FormulaPtr b);
FormulaPtr mkOr(FormulaPtr a, FormulaPtr b);
FormulaPtr mkImplies(FormulaPtr a, FormulaPtr b);
FormulaPtr mkIff(FormulaPtr a, FormulaPtr b);
FormulaPtr EX(FormulaPtr f);
FormulaPtr AX(FormulaPtr f);
FormulaPtr EF(FormulaPtr f);
FormulaPtr AF(FormulaPtr f);
FormulaPtr EG(FormulaPtr f);
FormulaPtr AG(FormulaPtr f);
FormulaPtr EU(FormulaPtr a, FormulaPtr b);
FormulaPtr AU(FormulaPtr a, FormulaPtr b);
/// N-ary conjunction/disjunction (empty list = true/false respectively).
FormulaPtr conj(const std::vector<FormulaPtr>& fs);
FormulaPtr disj(const std::vector<FormulaPtr>& fs);

// ---- Inspection ------------------------------------------------------------

/// True iff f contains no temporal operator (a boolean combination of atoms;
/// the "propositional formulas" of the paper's rules).
bool isPropositional(const FormulaPtr& f);

/// Structural equality (atoms compared textually).
bool equal(const FormulaPtr& a, const FormulaPtr& b);

/// SMV-like rendering, fully parenthesized only where required.
std::string toString(const FormulaPtr& f);

/// All atom texts occurring in f.
std::set<std::string> collectAtoms(const FormulaPtr& f);

/// All variable names occurring in f's atoms (the `var` part of "var=value",
/// or the atom itself for bare atoms).
std::set<std::string> collectVariables(const FormulaPtr& f);

/// Rewrite the derived operators EF/AF/EG/AG into the base fragment
/// {atoms, !, &, E/A X, E/A U} exactly per the paper's definitional rules:
///   AFg = A(true U g)        EFg = E(true U g)
///   AGf = !E(true U !f)      EGf = !A(true U !f)
/// (with ∨, ⇒, ⇔ expanded through ¬/∧).  Used by tests to validate that the
/// checkers agree with the definitional semantics.
FormulaPtr desugar(const FormulaPtr& f);

// ---- Restriction index -----------------------------------------------------

/// Paper §2.2: M ⊨_r f with r = (I, F) means f holds (quantifying over
/// F-fair paths only) in every state satisfying I.
struct Restriction {
  FormulaPtr init;                   ///< initial condition I
  std::vector<FormulaPtr> fairness;  ///< fairness constraints F

  /// The special case (true, {true}) written ⊨ in the paper.
  static Restriction trivial();

  /// r with an extra fairness constraint appended.
  Restriction withFairness(FormulaPtr f) const;
  /// r with the initial condition strengthened to init & i.
  Restriction withInit(FormulaPtr i) const;

  /// True for (true, {true}) (or an empty fairness list).
  bool isTrivial() const;

  std::string toString() const;
};

/// A named property under a restriction — the unit of specification
/// throughout the library (e.g. "Srv1", "Afs1").
struct Spec {
  std::string name;
  Restriction r;
  FormulaPtr f;
};

}  // namespace cmc::ctl
