// Recursive-descent parser for CTL formulas in SMV surface syntax.
//
// Grammar (lowest to highest precedence):
//   iff     := implies ('<->' implies)*
//   implies := or ('->' implies)?                (right associative)
//   or      := and ('|' and)*
//   and     := unary ('&' unary)*
//   unary   := '!' unary
//            | ('AX'|'EX'|'AF'|'EF'|'AG'|'EG') unary
//            | 'A' '[' iff 'U' iff ']' | 'E' '[' iff 'U' iff ']'
//            | '(' iff ')' | literal | atom
//   atom    := ident (('='|'!=') (ident | number))?
//   literal := 'TRUE' | 'FALSE' | '1' | '0'
//
// Throws cmc::ParseError with line/column on malformed input.
#pragma once

#include <string_view>

#include "ctl/formula.hpp"
#include "util/common.hpp"  // ParseError

namespace cmc::ctl {

/// Parse a single CTL formula; the whole input must be consumed.
FormulaPtr parse(std::string_view text);

}  // namespace cmc::ctl
