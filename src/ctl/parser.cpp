#include "ctl/parser.hpp"

#include <cctype>

#include "util/common.hpp"

namespace cmc::ctl {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  FormulaPtr parseAll() {
    FormulaPtr f = parseIff();
    skipSpace();
    if (pos_ != text_.size()) {
      fail("unexpected trailing input");
    }
    return f;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    int line = 1;
    int col = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    throw ParseError(what, line, col);
  }

  void skipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool eat(std::string_view token) {
    skipSpace();
    if (text_.substr(pos_, token.size()) == token) {
      pos_ += token.size();
      return true;
    }
    return false;
  }

  char peek() {
    skipSpace();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  static bool isIdentStart(char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
  }
  static bool isIdentChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '.';
  }

  std::string ident() {
    skipSpace();
    if (pos_ >= text_.size() || !isIdentStart(text_[pos_])) {
      fail("expected identifier");
    }
    std::size_t begin = pos_;
    while (pos_ < text_.size() && isIdentChar(text_[pos_])) ++pos_;
    return std::string(text_.substr(begin, pos_ - begin));
  }

  std::string identOrNumber() {
    skipSpace();
    if (pos_ < text_.size() &&
        std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      std::size_t begin = pos_;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
      return std::string(text_.substr(begin, pos_ - begin));
    }
    return ident();
  }

  FormulaPtr parseIff() {
    FormulaPtr lhs = parseImplies();
    while (eat("<->")) {
      lhs = mkIff(lhs, parseImplies());
    }
    return lhs;
  }

  FormulaPtr parseImplies() {
    FormulaPtr lhs = parseOr();
    if (eat("->")) {
      return mkImplies(lhs, parseImplies());
    }
    return lhs;
  }

  FormulaPtr parseOr() {
    FormulaPtr lhs = parseAnd();
    for (;;) {
      skipSpace();
      // '|' but not part of '||' (we accept both spellings).
      if (eat("||") || eat("|")) {
        lhs = mkOr(lhs, parseAnd());
      } else {
        return lhs;
      }
    }
  }

  FormulaPtr parseAnd() {
    FormulaPtr lhs = parseUnary();
    for (;;) {
      if (eat("&&") || eat("&")) {
        lhs = mkAnd(lhs, parseUnary());
      } else {
        return lhs;
      }
    }
  }

  /// True when the identifier at pos_ is exactly `kw` (not a prefix of a
  /// longer identifier).
  bool eatKeyword(std::string_view kw) {
    skipSpace();
    if (text_.substr(pos_, kw.size()) != kw) return false;
    const std::size_t after = pos_ + kw.size();
    if (after < text_.size() && isIdentChar(text_[after])) return false;
    pos_ = after;
    return true;
  }

  FormulaPtr parseUnary() {
    skipSpace();
    if (eat("!")) return mkNot(parseUnary());
    if (eatKeyword("AX")) return AX(parseUnary());
    if (eatKeyword("EX")) return EX(parseUnary());
    if (eatKeyword("AF")) return AF(parseUnary());
    if (eatKeyword("EF")) return EF(parseUnary());
    if (eatKeyword("AG")) return AG(parseUnary());
    if (eatKeyword("EG")) return EG(parseUnary());
    if (eatKeyword("A")) return parseUntil(/*universal=*/true);
    if (eatKeyword("E")) return parseUntil(/*universal=*/false);
    if (eatKeyword("TRUE") || eatKeyword("true")) return mkTrue();
    if (eatKeyword("FALSE") || eatKeyword("false")) return mkFalse();
    if (eat("(")) {
      FormulaPtr f = parseIff();
      if (!eat(")")) fail("expected ')'");
      return f;
    }
    if (peek() == '1' || peek() == '0') {
      const char c = text_[pos_];
      // A bare 0/1 literal only; "0..3" style tokens never reach CTL.
      ++pos_;
      return c == '1' ? mkTrue() : mkFalse();
    }
    return parseAtom();
  }

  FormulaPtr parseUntil(bool universal) {
    if (!eat("[")) fail("expected '[' after path quantifier");
    FormulaPtr lhs = parseIff();
    if (!eatKeyword("U")) fail("expected 'U' in until formula");
    FormulaPtr rhs = parseIff();
    if (!eat("]")) fail("expected ']'");
    return universal ? AU(lhs, rhs) : EU(lhs, rhs);
  }

  FormulaPtr parseAtom() {
    std::string name = ident();
    skipSpace();
    if (eat("!=")) {
      return neq(name, identOrNumber());
    }
    if (peek() == '=') {
      // '=' but not '=>' (not in grammar, defensive).
      ++pos_;
      return eq(name, identOrNumber());
    }
    return atom(name);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

FormulaPtr parse(std::string_view text) { return Parser(text).parseAll(); }

}  // namespace cmc::ctl
