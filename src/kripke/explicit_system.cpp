#include "kripke/explicit_system.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_map>

namespace cmc::kripke {

ExplicitSystem::ExplicitSystem(std::vector<std::string> atoms)
    : atoms_(std::move(atoms)) {
  if (atoms_.size() > kMaxExplicitAtoms) {
    throw ModelError("explicit system limited to " +
                     std::to_string(kMaxExplicitAtoms) + " atoms, got " +
                     std::to_string(atoms_.size()));
  }
  std::unordered_set<std::string> seen;
  for (const std::string& a : atoms_) {
    if (!seen.insert(a).second) {
      throw ModelError("duplicate atom name: " + a);
    }
  }
}

std::size_t ExplicitSystem::atomIndex(const std::string& name) const {
  for (std::size_t i = 0; i < atoms_.size(); ++i) {
    if (atoms_[i] == name) return i;
  }
  throw ModelError("unknown atom: " + name);
}

bool ExplicitSystem::hasAtom(const std::string& name) const {
  return std::find(atoms_.begin(), atoms_.end(), name) != atoms_.end();
}

State ExplicitSystem::stateOf(const std::vector<std::string>& trueAtoms) const {
  State s = 0;
  for (const std::string& a : trueAtoms) {
    s |= State{1} << atomIndex(a);
  }
  return s;
}

std::string ExplicitSystem::stateToString(State s) const {
  std::ostringstream out;
  out << '{';
  bool first = true;
  for (std::size_t i = 0; i < atoms_.size(); ++i) {
    if ((s >> i) & 1u) {
      if (!first) out << ", ";
      first = false;
      out << atoms_[i];
    }
  }
  out << '}';
  return out.str();
}

void ExplicitSystem::addTransition(State from, State to) {
  CMC_ASSERT(from < stateCount() && to < stateCount());
  trans_.insert(pack(from, to));
  invalidateAdjacency();
}

bool ExplicitSystem::hasTransition(State from, State to) const {
  return trans_.count(pack(from, to)) != 0;
}

void ExplicitSystem::makeReflexive() {
  for (State s = 0; s < stateCount(); ++s) {
    trans_.insert(pack(s, s));
  }
  invalidateAdjacency();
}

bool ExplicitSystem::isReflexive() const {
  for (State s = 0; s < stateCount(); ++s) {
    if (trans_.count(pack(s, s)) == 0) return false;
  }
  return true;
}

bool ExplicitSystem::isTotal() const {
  std::vector<bool> hasSucc(stateCount(), false);
  forEachTransition([&](State from, State) { hasSucc[from] = true; });
  return std::all_of(hasSucc.begin(), hasSucc.end(), [](bool b) { return b; });
}

void ExplicitSystem::buildAdjacency() const {
  adjacency_.assign(stateCount(), {});
  forEachTransition(
      [&](State from, State to) { adjacency_[from].push_back(to); });
  for (std::vector<State>& succ : adjacency_) {
    std::sort(succ.begin(), succ.end());
  }
  adjacencyValid_ = true;
}

const std::vector<State>& ExplicitSystem::successors(State s) const {
  if (!adjacencyValid_) buildAdjacency();
  return adjacency_[s];
}

bool ExplicitSystem::sameBehavior(const ExplicitSystem& other) const {
  if (atoms_.size() != other.atoms_.size()) return false;
  // Build the bit permutation induced by matching atom names.
  std::vector<int> map(atoms_.size(), -1);  // our bit -> their bit
  for (std::size_t i = 0; i < atoms_.size(); ++i) {
    if (!other.hasAtom(atoms_[i])) return false;
    map[i] = static_cast<int>(other.atomIndex(atoms_[i]));
  }
  auto remap = [&](State s) {
    State t = 0;
    for (std::size_t i = 0; i < map.size(); ++i) {
      if ((s >> i) & 1u) t |= State{1} << map[i];
    }
    return t;
  };
  if (trans_.size() != other.trans_.size()) return false;
  bool ok = true;
  forEachTransition([&](State from, State to) {
    if (!other.hasTransition(remap(from), remap(to))) ok = false;
  });
  return ok;
}

ExplicitSystem identitySystem(std::vector<std::string> atoms) {
  ExplicitSystem sys(std::move(atoms));
  sys.makeReflexive();
  return sys;
}

}  // namespace cmc::kripke
