// Explicit-state fair-CTL model checker over ExplicitSystem.
//
// This is the library's independent oracle: it implements the paper's
// satisfaction relation (§2.1-2.2) directly on enumerated state sets, with
// fair path quantification via the Emerson-Lei characterization
//   EG_fair S = νZ. S ∧ ⋀_{F∈fairness} EX E[S U (Z ∧ F)].
// The symbolic checker must agree with it on every model and formula; the
// property-based tests enforce exactly that.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "ctl/formula.hpp"
#include "kripke/explicit_system.hpp"

namespace cmc::kripke {

/// Dense state set (index = State).
using StateSet = std::vector<bool>;

/// Optional hook resolving an atom text to its satisfying states; return
/// nullopt to fall back to the default resolution (bare atoms are bits of
/// the state; "a=1"/"a=0"/"a=TRUE"/"a=FALSE" test a bit).  SMV-elaborated
/// explicit systems install a hook that decodes enum encodings.
using AtomSemantics =
    std::function<std::optional<StateSet>(const std::string& atomText)>;

class ExplicitChecker {
 public:
  explicit ExplicitChecker(const ExplicitSystem& sys,
                           AtomSemantics semantics = nullptr);
  /// Keeps a reference to the system; temporaries would dangle.
  explicit ExplicitChecker(ExplicitSystem&&, AtomSemantics = nullptr) = delete;

  /// Satisfying states of f, quantifying path operators over `fairness`-fair
  /// paths only.  Pass an empty vector (or {true}) for plain CTL.
  StateSet sat(const ctl::FormulaPtr& f,
               const std::vector<ctl::FormulaPtr>& fairness);

  /// States from which a fair path exists (EG_fair true).
  StateSet fairStates(const std::vector<ctl::FormulaPtr>& fairness);

  /// The paper's M ⊨_r f: every state satisfying r.init satisfies f over
  /// r.fairness-fair paths.
  bool holds(const ctl::Spec& spec);
  bool holds(const ctl::Restriction& r, const ctl::FormulaPtr& f);

  /// M, s ⊨_r f for one state.
  bool holdsInState(State s, const ctl::Restriction& r,
                    const ctl::FormulaPtr& f);

  /// One state satisfying r.init but violating f, if any (counterexample
  /// seed for diagnostics).
  std::optional<State> findViolation(const ctl::Restriction& r,
                                     const ctl::FormulaPtr& f);

  /// Shortest transition path (forward BFS) from a state in `from` to a
  /// state in `target`; nullopt when unreachable.
  std::optional<std::vector<State>> findPath(const StateSet& from,
                                             const StateSet& target) const;

  /// For a spec AG good (good arbitrary CTL): shortest path from an
  /// r.init-state to a ¬good state; nullopt when AG good holds on the
  /// reachable fragment.
  std::optional<std::vector<State>> agCounterexamplePath(
      const ctl::Restriction& r, const ctl::FormulaPtr& good);

  const ExplicitSystem& system() const noexcept { return sys_; }

 private:
  StateSet satAtom(const std::string& text) const;
  StateSet preE(const StateSet& target) const;
  /// E[f U g] without fairness (fairness is folded into g by callers).
  StateSet untilE(const StateSet& f, const StateSet& g) const;
  /// Emerson-Lei greatest fixpoint.
  StateSet fairEG(const StateSet& region,
                  const std::vector<StateSet>& fairSets) const;
  StateSet satRec(const ctl::FormulaPtr& f,
                  const std::vector<StateSet>& fairSets,
                  const StateSet& fair);

  const ExplicitSystem& sys_;
  AtomSemantics semantics_;
  std::vector<std::vector<State>> predecessors_;  ///< reverse adjacency
};

// ---- Dense state-set helpers (shared with tests) ---------------------------

StateSet setAnd(const StateSet& a, const StateSet& b);
StateSet setOr(const StateSet& a, const StateSet& b);
StateSet setNot(const StateSet& a);
bool setSubset(const StateSet& a, const StateSet& b);
bool setEmpty(const StateSet& a);
std::size_t setCount(const StateSet& a);

}  // namespace cmc::kripke
