// Interleaving parallel composition of explicit systems (paper §3.1).
//
// M ∘ M' = (Σ ∪ Σ', R*) where R* is the smallest reflexive relation with
//   1. (s,t) ∈ R  and r ⊆ Σ*−Σ   ⟹ (s∪r, t∪r) ∈ R*
//   2. (s',t') ∈ R' and r' ⊆ Σ*−Σ' ⟹ (s'∪r', t'∪r') ∈ R*
// i.e. each component moves alone while the other's private atoms stay put,
// and stuttering is always allowed.
#pragma once

#include "kripke/explicit_system.hpp"

namespace cmc::kripke {

/// The composition M ∘ M'.  The resulting alphabet is the sorted union of
/// the two alphabets, making the operator commutative and associative up to
/// ExplicitSystem::sameBehavior (Lemma 1).
ExplicitSystem compose(const ExplicitSystem& m, const ExplicitSystem& mp);

/// The expansion of M over extra atoms Σ' (paper §3.2): M ∘ (Σ', I), a
/// system over Σ ∪ Σ' that never modifies atoms in Σ' − Σ.
ExplicitSystem expand(const ExplicitSystem& m,
                      const std::vector<std::string>& extraAtoms);

}  // namespace cmc::kripke
