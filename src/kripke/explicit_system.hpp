// Explicit finite-state systems exactly as in the paper (§2.1): a system is
// M = (Σ, R) where Σ is a finite set of atomic propositions, a state is the
// subset of Σ true in it, and R is a reflexive total transition relation
// over 2^Σ.
//
// States are bitmasks over the system's atom list (at most 32 atoms — the
// explicit representation is the oracle and the composition playground, not
// the scalable engine; that is the symbolic substrate's job).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "util/common.hpp"

namespace cmc::kripke {

/// A state: bit i set means atom i (in the owning system's order) is true.
using State = std::uint32_t;

/// Maximum alphabet size for explicit systems (2^20 states, 2^40 potential
/// transitions — far beyond anything the tests enumerate, but a hard guard).
inline constexpr std::size_t kMaxExplicitAtoms = 20;

class ExplicitSystem {
 public:
  /// Create a system over the given atomic propositions with an empty
  /// relation.  Atom names must be unique.
  explicit ExplicitSystem(std::vector<std::string> atoms);

  // ---- Alphabet -----------------------------------------------------------

  const std::vector<std::string>& atoms() const noexcept { return atoms_; }
  std::size_t atomCount() const noexcept { return atoms_.size(); }
  /// Index of `name` in the atom list; throws ModelError if absent.
  std::size_t atomIndex(const std::string& name) const;
  bool hasAtom(const std::string& name) const;
  /// Number of states, 2^|Σ|.
  std::uint64_t stateCount() const noexcept {
    return std::uint64_t{1} << atoms_.size();
  }
  /// Build a state from the set of atoms true in it.
  State stateOf(const std::vector<std::string>& trueAtoms) const;
  /// Render a state as "{a, c}" in atom order.
  std::string stateToString(State s) const;

  // ---- Relation -----------------------------------------------------------

  void addTransition(State from, State to);
  bool hasTransition(State from, State to) const;
  std::size_t transitionCount() const noexcept { return trans_.size(); }

  /// All transitions as packed (from << 20 | to)-style pairs; iterate via
  /// forEachTransition for decoded access.
  template <typename Fn>
  void forEachTransition(Fn&& fn) const {
    for (std::uint64_t packed : trans_) {
      fn(static_cast<State>(packed >> 32),
         static_cast<State>(packed & 0xffffffffu));
    }
  }

  /// Add (s, s) for every state (the paper assumes R reflexive).
  void makeReflexive();
  bool isReflexive() const;
  /// Every state has at least one successor.  Reflexive implies total.
  bool isTotal() const;

  /// Successor list of `s` (built on demand, cached until the relation
  /// changes).
  const std::vector<State>& successors(State s) const;

  // ---- Comparison ---------------------------------------------------------

  /// Semantic equality: same atom *set* (order-independent) and the same
  /// transition relation modulo the induced state renaming.  This is the
  /// equality used by the Lemma 1-5 validators.
  bool sameBehavior(const ExplicitSystem& other) const;

 private:
  static std::uint64_t pack(State from, State to) {
    return (std::uint64_t{from} << 32) | to;
  }
  void invalidateAdjacency() { adjacencyValid_ = false; }
  void buildAdjacency() const;

  std::vector<std::string> atoms_;
  std::unordered_set<std::uint64_t> trans_;

  mutable std::vector<std::vector<State>> adjacency_;
  mutable bool adjacencyValid_ = false;
};

/// The identity system (Σ, I) of Lemma 3: only stuttering transitions.
ExplicitSystem identitySystem(std::vector<std::string> atoms);

}  // namespace cmc::kripke
