#include "kripke/composition.hpp"

#include <algorithm>
#include <set>

namespace cmc::kripke {

namespace {

/// Lift every transition of `part` into `whole`, letting the atoms of
/// `whole` outside `part`'s alphabet take any (fixed) value: the frame
/// condition of the composition definition.
void liftTransitions(const ExplicitSystem& part, ExplicitSystem& whole) {
  // Map part-bit -> whole-bit.
  std::vector<std::size_t> map(part.atomCount());
  for (std::size_t i = 0; i < part.atomCount(); ++i) {
    map[i] = whole.atomIndex(part.atoms()[i]);
  }
  // Bits of `whole` not covered by `part` (the frame).
  std::vector<std::size_t> frame;
  std::vector<bool> covered(whole.atomCount(), false);
  for (std::size_t b : map) covered[b] = true;
  for (std::size_t b = 0; b < whole.atomCount(); ++b) {
    if (!covered[b]) frame.push_back(b);
  }
  const std::uint64_t frameCombos = std::uint64_t{1} << frame.size();

  auto lift = [&](State s) {
    State t = 0;
    for (std::size_t i = 0; i < map.size(); ++i) {
      if ((s >> i) & 1u) t |= State{1} << map[i];
    }
    return t;
  };

  part.forEachTransition([&](State from, State to) {
    const State lf = lift(from);
    const State lt = lift(to);
    for (std::uint64_t combo = 0; combo < frameCombos; ++combo) {
      State r = 0;
      for (std::size_t i = 0; i < frame.size(); ++i) {
        if ((combo >> i) & 1u) r |= State{1} << frame[i];
      }
      whole.addTransition(lf | r, lt | r);
    }
  });
}

}  // namespace

ExplicitSystem compose(const ExplicitSystem& m, const ExplicitSystem& mp) {
  std::set<std::string> unionAtoms(m.atoms().begin(), m.atoms().end());
  unionAtoms.insert(mp.atoms().begin(), mp.atoms().end());
  if (unionAtoms.size() > kMaxExplicitAtoms) {
    throw ModelError("composition alphabet too large for explicit systems");
  }
  ExplicitSystem whole(
      std::vector<std::string>(unionAtoms.begin(), unionAtoms.end()));
  liftTransitions(m, whole);
  liftTransitions(mp, whole);
  whole.makeReflexive();  // "smallest *reflexive* relation"
  return whole;
}

ExplicitSystem expand(const ExplicitSystem& m,
                      const std::vector<std::string>& extraAtoms) {
  return compose(m, identitySystem(extraAtoms));
}

}  // namespace cmc::kripke
