#include "kripke/explicit_checker.hpp"

#include <algorithm>
#include <deque>

namespace cmc::kripke {

using ctl::FormulaPtr;
using ctl::Op;

// ---- Dense state-set helpers ------------------------------------------------

StateSet setAnd(const StateSet& a, const StateSet& b) {
  CMC_ASSERT(a.size() == b.size());
  StateSet out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] && b[i];
  return out;
}

StateSet setOr(const StateSet& a, const StateSet& b) {
  CMC_ASSERT(a.size() == b.size());
  StateSet out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] || b[i];
  return out;
}

StateSet setNot(const StateSet& a) {
  StateSet out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = !a[i];
  return out;
}

bool setSubset(const StateSet& a, const StateSet& b) {
  CMC_ASSERT(a.size() == b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] && !b[i]) return false;
  }
  return true;
}

bool setEmpty(const StateSet& a) {
  return std::none_of(a.begin(), a.end(), [](bool b) { return b; });
}

std::size_t setCount(const StateSet& a) {
  return static_cast<std::size_t>(std::count(a.begin(), a.end(), true));
}

// ---- Checker ----------------------------------------------------------------

ExplicitChecker::ExplicitChecker(const ExplicitSystem& sys,
                                 AtomSemantics semantics)
    : sys_(sys), semantics_(std::move(semantics)) {
  predecessors_.assign(sys_.stateCount(), {});
  sys_.forEachTransition(
      [&](State from, State to) { predecessors_[to].push_back(from); });
}

StateSet ExplicitChecker::satAtom(const std::string& text) const {
  if (semantics_) {
    if (std::optional<StateSet> custom = semantics_(text)) {
      CMC_ASSERT(custom->size() == sys_.stateCount());
      return *std::move(custom);
    }
  }
  const std::uint64_t n = sys_.stateCount();
  // "var=value": accept boolean comparisons against 0/1/TRUE/FALSE.
  const std::size_t pos = text.find('=');
  std::string name = pos == std::string::npos ? text : text.substr(0, pos);
  bool expect = true;
  if (pos != std::string::npos) {
    const std::string value = text.substr(pos + 1);
    if (value == "1" || value == "TRUE" || value == "true") {
      expect = true;
    } else if (value == "0" || value == "FALSE" || value == "false") {
      expect = false;
    } else {
      throw ModelError("explicit checker cannot resolve atom '" + text +
                       "' (no atom semantics installed)");
    }
  }
  const std::size_t bit = sys_.atomIndex(name);
  StateSet out(n);
  for (std::uint64_t s = 0; s < n; ++s) {
    out[s] = (((s >> bit) & 1u) != 0) == expect;
  }
  return out;
}

StateSet ExplicitChecker::preE(const StateSet& target) const {
  StateSet out(sys_.stateCount(), false);
  for (State t = 0; t < sys_.stateCount(); ++t) {
    if (!target[t]) continue;
    for (State p : predecessors_[t]) out[p] = true;
  }
  return out;
}

StateSet ExplicitChecker::untilE(const StateSet& f, const StateSet& g) const {
  // Backward reachability from g through f-states.
  StateSet result = g;
  std::deque<State> work;
  for (State s = 0; s < sys_.stateCount(); ++s) {
    if (g[s]) work.push_back(s);
  }
  while (!work.empty()) {
    const State t = work.front();
    work.pop_front();
    for (State p : predecessors_[t]) {
      if (!result[p] && f[p]) {
        result[p] = true;
        work.push_back(p);
      }
    }
  }
  return result;
}

StateSet ExplicitChecker::fairEG(const StateSet& region,
                                 const std::vector<StateSet>& fairSetsIn) const {
  // νZ. region ∧ ⋀_F EX E[region U (Z ∧ F)]
  // With no constraints this degenerates to νZ. region ∧ EX E[region U Z],
  // i.e. plain EG, by using the single constraint {true}.
  std::vector<StateSet> fairSets = fairSetsIn;
  if (fairSets.empty()) {
    fairSets.emplace_back(region.size(), true);
  }
  StateSet z = region;
  for (;;) {
    StateSet next = z;
    for (const StateSet& fc : fairSets) {
      const StateSet target = setAnd(next, fc);
      const StateSet reach = untilE(region, target);
      next = setAnd(next, setAnd(region, preE(reach)));
    }
    if (next == z) return z;
    z = std::move(next);
  }
}

StateSet ExplicitChecker::fairStates(
    const std::vector<ctl::FormulaPtr>& fairness) {
  std::vector<StateSet> fairSets;
  StateSet all(sys_.stateCount(), true);
  for (const FormulaPtr& f : fairness) {
    fairSets.push_back(satRec(f, {}, all));
  }
  if (fairSets.empty()) return all;
  return fairEG(all, fairSets);
}

StateSet ExplicitChecker::sat(const ctl::FormulaPtr& f,
                              const std::vector<ctl::FormulaPtr>& fairness) {
  std::vector<StateSet> fairSets;
  StateSet all(sys_.stateCount(), true);
  for (const FormulaPtr& fc : fairness) {
    fairSets.push_back(satRec(fc, {}, all));
  }
  const StateSet fair =
      fairSets.empty() ? all : fairEG(all, fairSets);
  return satRec(f, fairSets, fair);
}

StateSet ExplicitChecker::satRec(const ctl::FormulaPtr& f,
                                 const std::vector<StateSet>& fairSets,
                                 const StateSet& fair) {
  CMC_ASSERT(f != nullptr);
  const std::uint64_t n = sys_.stateCount();
  switch (f->op()) {
    case Op::True:
      return StateSet(n, true);
    case Op::False:
      return StateSet(n, false);
    case Op::Atom:
      return satAtom(f->atom());
    case Op::Not:
      return setNot(satRec(f->lhs(), fairSets, fair));
    case Op::And:
      return setAnd(satRec(f->lhs(), fairSets, fair),
                    satRec(f->rhs(), fairSets, fair));
    case Op::Or:
      return setOr(satRec(f->lhs(), fairSets, fair),
                   satRec(f->rhs(), fairSets, fair));
    case Op::Implies:
      return setOr(setNot(satRec(f->lhs(), fairSets, fair)),
                   satRec(f->rhs(), fairSets, fair));
    case Op::Iff: {
      const StateSet a = satRec(f->lhs(), fairSets, fair);
      const StateSet b = satRec(f->rhs(), fairSets, fair);
      StateSet out(n);
      for (std::uint64_t i = 0; i < n; ++i) out[i] = a[i] == b[i];
      return out;
    }
    case Op::EX:
      // EX over fair paths: some successor starts a fair path satisfying f.
      return preE(setAnd(satRec(f->lhs(), fairSets, fair), fair));
    case Op::AX:
      // AX f = !EX !f (fair duals).
      return setNot(
          preE(setAnd(setNot(satRec(f->lhs(), fairSets, fair)), fair)));
    case Op::EU:
      return untilE(satRec(f->lhs(), fairSets, fair),
                    setAnd(satRec(f->rhs(), fairSets, fair), fair));
    case Op::EF:
      return untilE(StateSet(n, true),
                    setAnd(satRec(f->lhs(), fairSets, fair), fair));
    case Op::EG:
      return fairEG(satRec(f->lhs(), fairSets, fair), fairSets);
    case Op::AF:
      // AF f = !EG !f.
      return setNot(
          fairEG(setNot(satRec(f->lhs(), fairSets, fair)), fairSets));
    case Op::AG:
      // AG f = !EF !f.
      return setNot(untilE(
          StateSet(n, true),
          setAnd(setNot(satRec(f->lhs(), fairSets, fair)), fair)));
    case Op::AU: {
      // A[f U g] = !(E[!g U (!f & !g)] | EG !g).
      const StateSet sf = satRec(f->lhs(), fairSets, fair);
      const StateSet sg = satRec(f->rhs(), fairSets, fair);
      const StateSet ng = setNot(sg);
      const StateSet part1 =
          untilE(ng, setAnd(setAnd(setNot(sf), ng), fair));
      const StateSet part2 = fairEG(ng, fairSets);
      return setNot(setOr(part1, part2));
    }
  }
  throw Error("satRec: unreachable");
}

bool ExplicitChecker::holds(const ctl::Spec& spec) {
  return holds(spec.r, spec.f);
}

bool ExplicitChecker::holds(const ctl::Restriction& r,
                            const ctl::FormulaPtr& f) {
  return !findViolation(r, f).has_value();
}

bool ExplicitChecker::holdsInState(State s, const ctl::Restriction& r,
                                   const ctl::FormulaPtr& f) {
  const StateSet satF = sat(f, r.fairness);
  return satF[s];
}

std::optional<std::vector<State>> ExplicitChecker::findPath(
    const StateSet& from, const StateSet& target) const {
  CMC_ASSERT(from.size() == sys_.stateCount());
  std::vector<State> parent(sys_.stateCount(), 0);
  std::vector<bool> seen(sys_.stateCount(), false);
  std::deque<State> queue;
  for (State s = 0; s < sys_.stateCount(); ++s) {
    if (from[s]) {
      if (target[s]) return std::vector<State>{s};
      seen[s] = true;
      queue.push_back(s);
    }
  }
  while (!queue.empty()) {
    const State s = queue.front();
    queue.pop_front();
    for (State t : sys_.successors(s)) {
      if (seen[t]) continue;
      seen[t] = true;
      parent[t] = s;
      if (target[t]) {
        std::vector<State> path{t};
        State cur = t;
        while (!from[cur]) {
          cur = parent[cur];
          path.push_back(cur);
        }
        return std::vector<State>(path.rbegin(), path.rend());
      }
      queue.push_back(t);
    }
  }
  return std::nullopt;
}

std::optional<std::vector<State>> ExplicitChecker::agCounterexamplePath(
    const ctl::Restriction& r, const ctl::FormulaPtr& good) {
  const FormulaPtr init = r.init != nullptr ? r.init : ctl::mkTrue();
  return findPath(sat(init, r.fairness),
                  setNot(sat(good, r.fairness)));
}

std::optional<State> ExplicitChecker::findViolation(
    const ctl::Restriction& r, const ctl::FormulaPtr& f) {
  const FormulaPtr init = r.init != nullptr ? r.init : ctl::mkTrue();
  const StateSet satInit = sat(init, r.fairness);
  const StateSet satF = sat(f, r.fairness);
  for (State s = 0; s < sys_.stateCount(); ++s) {
    if (satInit[s] && !satF[s]) return s;
  }
  return std::nullopt;
}

}  // namespace cmc::kripke
