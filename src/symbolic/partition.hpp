// Partitioned transition relations (Burch/Clarke/Long-style) for the
// interleaving composition of paper §3.1.
//
// The composed relation has the shape
//   T* = ⋁_i (T_i ∧ frame(Σ*−Σ_i))  ∨  Id(Σ*)
// — a *disjunction* of interleaving tracks, where each track is itself a
// *conjunction* of small relations: the component's own T_i plus one frame
// conjunct (v' = v, within domain) per variable the component does not own.
// Conjoining all of this into one monolithic BDD is exactly the blow-up the
// compositional story is meant to avoid, so we keep the structure:
//
//  - PartitionedRelation: one track as an ordered list of conjunct BDDs,
//    each tagged with its support, with a greedy clustering pass that merges
//    conjuncts up to a node-count threshold (NuSMV-style);
//  - PreimageSchedule: an early-quantification schedule over a track — each
//    quantified variable is existentially eliminated at the *last* cluster
//    whose support contains it, so intermediate products never carry
//    variables longer than needed (IWLS95 heuristic);
//  - TransitionPartition: the disjunction of tracks.  Preimages distribute
//    over ∨, so each track is processed independently and the results are
//    disjoined — the full product is never materialized.
//
// BDDs are canonical per manager, so a partitioned preimage is *identical*
// (same node) to the monolithic one; the tests assert this equality.
#pragma once

#include <cstdint>
#include <vector>

#include "bdd/manager.hpp"
#include "symbolic/var_table.hpp"

namespace cmc::symbolic {

/// One conjunct (after clustering: one cluster) of a conjunctively
/// partitioned relation, tagged with its support.
struct Conjunct {
  bdd::Bdd rel;
  /// BDD variables `rel` depends on, ascending.
  std::vector<std::uint32_t> support;
  /// True iff this conjunct is a frame condition v' = v (∧ domains) for a
  /// variable recorded in the owning track's frameVars().
  bool isFrame = false;
};

/// An ordered list of conjunct BDDs whose conjunction is one interleaving
/// track of the transition relation.
class PartitionedRelation {
 public:
  PartitionedRelation() = default;

  /// Wrap existing conjuncts (supports are computed).  `frameOnly` marks a
  /// track made purely of frame conjuncts — the global stutter Id(Σ); the
  /// composition uses the flag to avoid duplicating the stutter track.
  static PartitionedRelation of(std::vector<bdd::Bdd> conjuncts,
                                bool frameOnly = false);

  bool frameOnly() const noexcept { return frameOnly_; }
  bool empty() const noexcept { return conjuncts_.empty(); }
  std::size_t size() const noexcept { return conjuncts_.size(); }
  const std::vector<Conjunct>& conjuncts() const noexcept {
    return conjuncts_;
  }

  /// Append one conjunct (its support is computed).  Appending a non-frame
  /// conjunct clears the frameOnly flag.
  void append(bdd::Bdd conjunct, bool isFrame = false);

  /// Append the frame conjunct for variable `v` and record it in
  /// frameVars().  Tagged frames let the checker skip the conjunct entirely:
  /// ∃v'. (v'=v ∧ dom ∧ X') is the substitution v'↦v, so a track's preimage
  /// only needs its *core* conjuncts, a partial swap of the target over the
  /// non-frame variables, and the frame variables' domain constraint.
  void appendFrame(bdd::Bdd conjunct, VarId v);

  /// Variables covered by tagged frame conjuncts (in append order).
  const std::vector<VarId>& frameVars() const noexcept { return frameVars_; }

  /// The non-frame conjuncts as a fresh track (frame bookkeeping dropped).
  PartitionedRelation core() const;

  /// True iff every frame conjunct was recorded via appendFrame — the
  /// precondition for the checker's substitution-based track preimage.
  bool framesTagged() const noexcept;

  /// Greedy clustering: process conjuncts smallest-first and conjoin each
  /// into the current cluster while the merged DAG stays within
  /// `nodeThreshold` nodes; otherwise start a new cluster.  A threshold of 0
  /// collapses the track into a single cluster (the monolithic product).
  void clusterGreedy(std::uint64_t nodeThreshold);

  /// The full conjunction ⋀ conjuncts (true for an empty track).
  bdd::Bdd product(bdd::Manager& mgr) const;

  /// Combined DAG size of the conjuncts, shared nodes counted once.
  std::uint64_t nodeCount() const;

 private:
  std::vector<Conjunct> conjuncts_;
  std::vector<VarId> frameVars_;
  bool frameOnly_ = false;
};

/// The disjunctively partitioned transition relation: T = ⋁ track products.
struct TransitionPartition {
  std::vector<PartitionedRelation> tracks;

  bool empty() const noexcept { return tracks.empty(); }
  /// True iff some track is the pure stutter Id(Σ).
  bool hasStutterTrack() const noexcept;
  /// Materialize the monolithic relation ⋁ products.
  bdd::Bdd monolithic(bdd::Manager& mgr) const;
  /// Combined DAG size over every conjunct of every track (shared nodes
  /// counted once) — the partitioned counterpart of the paper's "BDD nodes
  /// representing transition relation" counter.
  std::uint64_t nodeCount(const bdd::Manager& mgr) const;
  std::size_t conjunctCount() const noexcept;
};

/// Early-quantification schedule for exists(quantVars, track ∧ target):
/// clusters are folded in order and each quantified variable is eliminated
/// with andExists at the last cluster whose support contains it.  Variables
/// of `quantVars` that no cluster mentions are quantified out of the target
/// before the fold starts.
class PreimageSchedule {
 public:
  PreimageSchedule(bdd::Manager& mgr, PartitionedRelation track,
                   const std::vector<std::uint32_t>& quantVars);

  /// exists(quantVars, product(track) ∧ target), never building the product.
  bdd::Bdd relProduct(const bdd::Bdd& target) const;

  std::size_t clusterCount() const noexcept { return steps_.size(); }

 private:
  struct Step {
    bdd::Bdd rel;
    bdd::Bdd cube;  ///< quantVars eliminated at this step (may be true)
  };
  bdd::Manager* mgr_ = nullptr;
  bdd::Bdd leadingCube_;  ///< quantVars in no cluster support
  std::vector<Step> steps_;
};

}  // namespace cmc::symbolic
