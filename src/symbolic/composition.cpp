#include "symbolic/composition.hpp"

#include <algorithm>

namespace cmc::symbolic {

namespace {

/// Variables in `all` but not in `some` (both sorted).
std::vector<VarId> varsMinus(const std::vector<VarId>& all,
                             const std::vector<VarId>& some) {
  std::vector<VarId> out;
  std::set_difference(all.begin(), all.end(), some.begin(), some.end(),
                      std::back_inserter(out));
  return out;
}

}  // namespace

SymbolicSystem compose(const SymbolicSystem& m, const SymbolicSystem& mp) {
  if (m.ctx != mp.ctx || m.ctx == nullptr) {
    throw ModelError("compose: systems must share a symbolic context");
  }
  Context& ctx = *m.ctx;

  std::vector<VarId> unionVars;
  std::set_union(m.vars.begin(), m.vars.end(), mp.vars.begin(), mp.vars.end(),
                 std::back_inserter(unionVars));

  const bdd::Bdd frameM = ctx.frameAll(varsMinus(unionVars, m.vars));
  const bdd::Bdd frameMp = ctx.frameAll(varsMinus(unionVars, mp.vars));
  const bdd::Bdd domains = ctx.domainAll(unionVars, false) &
                           ctx.domainAll(unionVars, true);

  bdd::Bdd trans = ((m.trans & frameM) | (mp.trans & frameMp) |
                    ctx.frameAll(unionVars)) &
                   domains;

  SymbolicSystem sys;
  sys.ctx = &ctx;
  sys.name = m.name + " o " + mp.name;
  sys.vars = std::move(unionVars);
  sys.trans = std::move(trans);
  return sys;
}

SymbolicSystem expand(const SymbolicSystem& m,
                      const std::vector<VarId>& extraVars) {
  CMC_ASSERT(m.ctx != nullptr);
  SymbolicSystem id = identitySystem(*m.ctx, extraVars);
  SymbolicSystem out = compose(m, id);
  out.name = m.name + " (expanded)";
  return out;
}

SymbolicSystem composeAll(const std::vector<SymbolicSystem>& systems) {
  if (systems.empty()) {
    throw ModelError("composeAll: need at least one system");
  }
  SymbolicSystem acc = systems.front();
  for (std::size_t i = 1; i < systems.size(); ++i) {
    acc = compose(acc, systems[i]);
  }
  return acc;
}

bool sameBehavior(const SymbolicSystem& a, const SymbolicSystem& b) {
  return a.ctx == b.ctx && a.vars == b.vars && a.trans == b.trans;
}

}  // namespace cmc::symbolic
