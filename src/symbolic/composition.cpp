#include "symbolic/composition.hpp"

#include <algorithm>

namespace cmc::symbolic {

namespace {

/// Variables in `all` but not in `some` (both sorted).
std::vector<VarId> varsMinus(const std::vector<VarId>& all,
                             const std::vector<VarId>& some) {
  std::vector<VarId> out;
  std::set_difference(all.begin(), all.end(), some.begin(), some.end(),
                      std::back_inserter(out));
  return out;
}

/// Extend every non-stutter track of `sys` to the union alphabet by
/// appending one frame conjunct per missing variable (frame conditions stay
/// per-component instead of being conjoined), and push the results onto
/// `out`.  Stutter tracks are dropped: extended with frames they would
/// equal the union stutter Id(Σ*), which compose() adds exactly once.
void extendTracks(Context& ctx, const SymbolicSystem& sys,
                  const std::vector<VarId>& extra,
                  std::vector<PartitionedRelation>* out) {
  for (const PartitionedRelation& t : sys.partition.tracks) {
    if (t.frameOnly()) continue;
    PartitionedRelation extended = t;
    for (VarId v : extra) {
      extended.appendFrame(frameConjunct(ctx, v), v);
    }
    out->push_back(std::move(extended));
  }
}

}  // namespace

SymbolicSystem compose(const SymbolicSystem& m, const SymbolicSystem& mp) {
  if (m.ctx != mp.ctx || m.ctx == nullptr) {
    throw ModelError("compose: systems must share a symbolic context");
  }
  Context& ctx = *m.ctx;

  std::vector<VarId> unionVars;
  std::set_union(m.vars.begin(), m.vars.end(), mp.vars.begin(), mp.vars.end(),
                 std::back_inserter(unionVars));

  // T* = (T_M ∧ frame(Σ*−Σ_M)) ∨ (T_M' ∧ frame(Σ*−Σ_M')) ∨ Id(Σ*),
  // kept as tracks of conjuncts; the monolithic BDD stays lazy.
  SymbolicSystem sys;
  sys.ctx = &ctx;
  sys.name = m.name + " o " + mp.name;
  extendTracks(ctx, m, varsMinus(unionVars, m.vars), &sys.partition.tracks);
  extendTracks(ctx, mp, varsMinus(unionVars, mp.vars), &sys.partition.tracks);
  sys.partition.tracks.push_back(stutterTrack(ctx, unionVars));
  sys.vars = std::move(unionVars);
  return sys;
}

SymbolicSystem expand(const SymbolicSystem& m,
                      const std::vector<VarId>& extraVars) {
  CMC_ASSERT(m.ctx != nullptr);
  SymbolicSystem id = identitySystem(*m.ctx, extraVars);
  SymbolicSystem out = compose(m, id);
  out.name = m.name + " (expanded)";
  return out;
}

SymbolicSystem composeAll(const std::vector<SymbolicSystem>& systems) {
  if (systems.empty()) {
    throw ModelError("composeAll: need at least one system");
  }
  SymbolicSystem acc = systems.front();
  for (std::size_t i = 1; i < systems.size(); ++i) {
    acc = compose(acc, systems[i]);
  }
  return acc;
}

bool sameBehavior(const SymbolicSystem& a, const SymbolicSystem& b) {
  return a.ctx == b.ctx && a.vars == b.vars && a.transBdd() == b.transBdd();
}

}  // namespace cmc::symbolic
