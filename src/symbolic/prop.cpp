#include "symbolic/prop.hpp"

namespace cmc::symbolic {

bdd::Bdd propositionalBdd(Context& ctx, const ctl::FormulaPtr& f) {
  CMC_ASSERT(f != nullptr);
  switch (f->op()) {
    case ctl::Op::True:
      return ctx.mgr().bddTrue();
    case ctl::Op::False:
      return ctx.mgr().bddFalse();
    case ctl::Op::Atom:
      return ctx.atomBdd(f->atom());
    case ctl::Op::Not:
      return !propositionalBdd(ctx, f->lhs());
    case ctl::Op::And:
      return propositionalBdd(ctx, f->lhs()) &
             propositionalBdd(ctx, f->rhs());
    case ctl::Op::Or:
      return propositionalBdd(ctx, f->lhs()) |
             propositionalBdd(ctx, f->rhs());
    case ctl::Op::Implies:
      return propositionalBdd(ctx, f->lhs())
          .implies(propositionalBdd(ctx, f->rhs()));
    case ctl::Op::Iff:
      return propositionalBdd(ctx, f->lhs())
          .iff(propositionalBdd(ctx, f->rhs()));
    default:
      throw ModelError("propositionalBdd: temporal operator in " +
                       ctl::toString(f));
  }
}

bool propositionallyValid(Context& ctx, const std::vector<VarId>& vars,
                          const ctl::FormulaPtr& f) {
  const bdd::Bdd domain = ctx.domainAll(vars, false);
  return (domain & !propositionalBdd(ctx, f)).isFalse();
}

}  // namespace cmc::symbolic
