// Propositional formulas as BDDs over a context's variable encodings, and
// validity checking over the declared domains.  Shared by the verifier's
// invariance rule and the leads-to ledger.
#pragma once

#include "ctl/formula.hpp"
#include "symbolic/var_table.hpp"

namespace cmc::symbolic {

/// Build the BDD of a propositional formula (throws ModelError on temporal
/// operators or unknown atoms).
bdd::Bdd propositionalBdd(Context& ctx, const ctl::FormulaPtr& f);

/// True iff f holds in every valid assignment of `vars`' domains.
bool propositionallyValid(Context& ctx, const std::vector<VarId>& vars,
                          const ctl::FormulaPtr& f);

}  // namespace cmc::symbolic
