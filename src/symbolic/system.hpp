// Symbolic transition systems: the BDD-encoded counterpart of
// kripke::ExplicitSystem.  A system owns a subset of the context's
// variables (its alphabet Σ) and a transition-relation BDD T(x, x') over
// the current/next bits of those variables.
//
// Invariant: `trans` is conjoined with the domain constraints of the
// system's variables in both columns, so T never relates invalid encodings
// (paper §3.4's automatic mapping).
#pragma once

#include <string>
#include <vector>

#include "bdd/manager.hpp"
#include "symbolic/var_table.hpp"

namespace cmc::symbolic {

struct SymbolicSystem {
  Context* ctx = nullptr;
  std::string name;
  /// The alphabet Σ: ids of the variables this system is over (sorted).
  std::vector<VarId> vars;
  /// T(x, x') over current/next bits of `vars`.
  bdd::Bdd trans;

  /// Valid current-state encodings of this system's variables.
  bdd::Bdd stateDomain() const;
  /// Valid next-state encodings.
  bdd::Bdd nextDomain() const;
  /// True iff every valid state can stutter (frame ⊆ T).
  bool isReflexive() const;
  /// True iff every valid state has at least one successor.
  bool isTotal() const;
  /// DAG size of the transition-relation BDD — the "BDD nodes representing
  /// transition relation" counter of the paper's Figures 7/10/15/17.
  std::uint64_t transNodeCount() const;
  /// Number of valid states, |values(v₁)| · |values(v₂)| · …
  double stateCount() const;
};

/// Build a system; sorts/dedups `vars`, validates that `trans`'s support is
/// within their bits, and conjoins the domain constraints.
SymbolicSystem makeSystem(Context& ctx, std::string name,
                          std::vector<VarId> vars, bdd::Bdd trans);

/// The identity system (Σ, I): stuttering only (Lemma 3's unit element).
SymbolicSystem identitySystem(Context& ctx, std::vector<VarId> vars,
                              std::string name = "identity");

/// Add the stuttering transitions to `sys` (reflexive closure).
void addReflexive(SymbolicSystem& sys);

}  // namespace cmc::symbolic
