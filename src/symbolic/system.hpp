// Symbolic transition systems: the BDD-encoded counterpart of
// kripke::ExplicitSystem.  A system owns a subset of the context's
// variables (its alphabet Σ) and a transition relation T(x, x') over the
// current/next bits of those variables.
//
// T is carried in two forms:
//  - `partition`: a disjunction of interleaving tracks, each an ordered
//    list of conjunct BDDs (see symbolic/partition.hpp).  Composition
//    operates on this form and never conjoins components, so composing is
//    near-free and preimages can use early quantification.
//  - a lazily materialized monolithic BDD, built on first transBdd() call
//    for code that needs the whole relation (traces, lemma validators,
//    explicit images).  Leaf systems materialize it eagerly — for them the
//    two forms coincide.
//
// Invariant: the relation is conjoined with the domain constraints of the
// system's variables in both columns, so T never relates invalid encodings
// (paper §3.4's automatic mapping).  In the partitioned form every track
// carries the constraints: component conjuncts via makeSystem, frame
// conjuncts per variable.
#pragma once

#include <string>
#include <vector>

#include "bdd/manager.hpp"
#include "symbolic/partition.hpp"
#include "symbolic/var_table.hpp"

namespace cmc::bdd {
class Importer;
}

namespace cmc::symbolic {

struct SymbolicSystem {
  Context* ctx = nullptr;
  std::string name;
  /// The alphabet Σ: ids of the variables this system is over (sorted).
  std::vector<VarId> vars;
  /// T(x, x') as a disjunction of conjunctively partitioned tracks.
  TransitionPartition partition;

  /// The monolithic T(x, x') over current/next bits of `vars`; materialized
  /// from `partition` on first use and cached.
  const bdd::Bdd& transBdd() const;
  /// True iff the monolithic BDD has been materialized (or was built
  /// eagerly); checked by accounting code that must not force it.
  bool transMaterialized() const noexcept { return !monolithic_.isNull(); }

  /// Valid current-state encodings of this system's variables.
  bdd::Bdd stateDomain() const;
  /// Valid next-state encodings.
  bdd::Bdd nextDomain() const;
  /// True iff every valid state can stutter (frame ⊆ T).
  bool isReflexive() const;
  /// True iff every valid state has at least one successor.
  bool isTotal() const;
  /// "BDD nodes representing transition relation" (paper Figs. 7/10/15/17):
  /// DAG size of the monolithic BDD when materialized, otherwise the shared
  /// DAG size of the partition's conjuncts (without materializing).
  std::uint64_t transNodeCount() const;
  /// Number of valid states, |values(v₁)| · |values(v₂)| · …
  double stateCount() const;

  /// Cache for the monolithic relation; mutable so a const system can
  /// materialize on demand.  Use transBdd() instead of touching this.
  mutable bdd::Bdd monolithic_;
};

/// Build a system; sorts/dedups `vars`, validates that `trans`'s support is
/// within their bits, and conjoins the domain constraints.  The partition is
/// a single track holding the (domain-constrained) relation.
SymbolicSystem makeSystem(Context& ctx, std::string name,
                          std::vector<VarId> vars, bdd::Bdd trans);

/// Build a system from a *list* of transition conjuncts (one per next()
/// assignment / TRANS constraint) without conjoining them: the partition is
/// a single multi-conjunct track plus per-variable domain conjuncts, and the
/// monolithic BDD stays lazy.  This is what makes the checker's
/// early-quantification schedule genuinely multi-cluster.
SymbolicSystem makeSystem(Context& ctx, std::string name,
                          std::vector<VarId> vars,
                          std::vector<bdd::Bdd> conjuncts);

/// The identity system (Σ, I): stuttering only (Lemma 3's unit element).
/// Its partition is a frame-only track with one conjunct per variable.
SymbolicSystem identitySystem(Context& ctx, std::vector<VarId> vars,
                              std::string name = "identity");

/// One frame conjunct: v' = v within v's domain (both columns).
bdd::Bdd frameConjunct(Context& ctx, VarId v);

/// The pure stutter track Id(Σ) over `vars`: one frame conjunct each.
PartitionedRelation stutterTrack(Context& ctx, const std::vector<VarId>& vars);

/// Add the stuttering transitions to `sys` (reflexive closure).
void addReflexive(SymbolicSystem& sys);

/// Copy `src` (owned by another context) into `dst` through `imp`, a
/// bdd::Importer whose destination is dst's manager.  Rebuilds the track
/// structure conjunct by conjunct — frame tags and frameVars survive, so
/// the substitution-based preimage works on the copy — while the importer's
/// shared translation map keeps subgraphs shared across conjuncts (and
/// across several systems imported through the same importer).  The
/// materialized monolithic relation is copied only when `wantMonolithic`
/// (a worker running the partitioned engine never pays for it).
///
/// Precondition: dst adopted src's variables (Context::adoptVariablesFrom),
/// so both contexts agree on the bit layout.  src is only read.
SymbolicSystem importSystem(Context& dst, bdd::Importer& imp,
                            const SymbolicSystem& src, bool wantMonolithic);

}  // namespace cmc::symbolic
