#include "symbolic/partition.hpp"

#include <algorithm>

#include "util/common.hpp"

namespace cmc::symbolic {

namespace {

std::vector<std::uint32_t> supportOf(const bdd::Bdd& f) {
  if (f.isNull() || f.isTerminal()) return {};
  return f.manager()->support(f);
}

}  // namespace

PartitionedRelation PartitionedRelation::of(std::vector<bdd::Bdd> conjuncts,
                                            bool frameOnly) {
  PartitionedRelation out;
  out.frameOnly_ = frameOnly;
  out.conjuncts_.reserve(conjuncts.size());
  for (bdd::Bdd& c : conjuncts) {
    CMC_ASSERT(!c.isNull());
    std::vector<std::uint32_t> sup = supportOf(c);
    out.conjuncts_.push_back(Conjunct{std::move(c), std::move(sup)});
  }
  return out;
}

void PartitionedRelation::append(bdd::Bdd conjunct, bool isFrame) {
  CMC_ASSERT(!conjunct.isNull());
  if (!isFrame) frameOnly_ = false;
  std::vector<std::uint32_t> sup = supportOf(conjunct);
  conjuncts_.push_back(Conjunct{std::move(conjunct), std::move(sup), isFrame});
}

void PartitionedRelation::appendFrame(bdd::Bdd conjunct, VarId v) {
  append(std::move(conjunct), /*isFrame=*/true);
  frameVars_.push_back(v);
}

PartitionedRelation PartitionedRelation::core() const {
  PartitionedRelation out;
  for (const Conjunct& c : conjuncts_) {
    if (!c.isFrame) out.conjuncts_.push_back(c);
  }
  return out;
}

bool PartitionedRelation::framesTagged() const noexcept {
  std::size_t frames = 0;
  for (const Conjunct& c : conjuncts_) frames += c.isFrame ? 1 : 0;
  return frames == frameVars_.size();
}

void PartitionedRelation::clusterGreedy(std::uint64_t nodeThreshold) {
  if (conjuncts_.size() <= 1) return;
  bdd::Manager& mgr = *conjuncts_.front().rel.manager();

  // Smallest conjuncts first: frames merge together cheaply and the big
  // component relation stays late in the fold, where most of its next-state
  // variables are already scheduled for quantification.
  std::stable_sort(conjuncts_.begin(), conjuncts_.end(),
                   [&](const Conjunct& a, const Conjunct& b) {
                     return mgr.dagSize(a.rel) < mgr.dagSize(b.rel);
                   });

  std::vector<Conjunct> clusters;
  for (Conjunct& c : conjuncts_) {
    if (!clusters.empty()) {
      const bdd::Bdd merged = clusters.back().rel & c.rel;
      if (nodeThreshold == 0 || mgr.dagSize(merged) <= nodeThreshold) {
        clusters.back().rel = merged;
        clusters.back().support = supportOf(merged);
        clusters.back().isFrame = clusters.back().isFrame && c.isFrame;
        continue;
      }
    }
    clusters.push_back(std::move(c));
  }
  conjuncts_ = std::move(clusters);
  // Merging loses the conjunct↔variable association; drop the bookkeeping
  // so framesTagged() reports the track as generic from here on.
  frameVars_.clear();
}

bdd::Bdd PartitionedRelation::product(bdd::Manager& mgr) const {
  bdd::Bdd acc = mgr.bddTrue();
  for (const Conjunct& c : conjuncts_) acc &= c.rel;
  return acc;
}

std::uint64_t PartitionedRelation::nodeCount() const {
  if (conjuncts_.empty()) return 0;
  std::vector<bdd::Bdd> rels;
  rels.reserve(conjuncts_.size());
  for (const Conjunct& c : conjuncts_) rels.push_back(c.rel);
  return conjuncts_.front().rel.manager()->dagSize(rels);
}

bool TransitionPartition::hasStutterTrack() const noexcept {
  return std::any_of(
      tracks.begin(), tracks.end(),
      [](const PartitionedRelation& t) { return t.frameOnly(); });
}

bdd::Bdd TransitionPartition::monolithic(bdd::Manager& mgr) const {
  bdd::Bdd acc = mgr.bddFalse();
  for (const PartitionedRelation& t : tracks) acc |= t.product(mgr);
  return acc;
}

std::uint64_t TransitionPartition::nodeCount(const bdd::Manager& mgr) const {
  std::vector<bdd::Bdd> rels;
  for (const PartitionedRelation& t : tracks) {
    for (const Conjunct& c : t.conjuncts()) rels.push_back(c.rel);
  }
  return mgr.dagSize(rels);
}

std::size_t TransitionPartition::conjunctCount() const noexcept {
  std::size_t n = 0;
  for (const PartitionedRelation& t : tracks) n += t.size();
  return n;
}

PreimageSchedule::PreimageSchedule(bdd::Manager& mgr,
                                   PartitionedRelation track,
                                   const std::vector<std::uint32_t>& quantVars)
    : mgr_(&mgr) {
  const std::vector<Conjunct>& clusters = track.conjuncts();

  // lastIn[v] = index of the last cluster whose support contains v.
  std::vector<std::uint32_t> leading;
  std::vector<std::vector<std::uint32_t>> perStep(clusters.size());
  for (std::uint32_t v : quantVars) {
    std::size_t last = clusters.size();
    for (std::size_t i = clusters.size(); i-- > 0;) {
      if (std::binary_search(clusters[i].support.begin(),
                             clusters[i].support.end(), v)) {
        last = i;
        break;
      }
    }
    if (last == clusters.size()) {
      leading.push_back(v);  // unconstrained: quantify out of the target
    } else {
      perStep[last].push_back(v);
    }
  }

  leadingCube_ = mgr.cube(leading);
  steps_.reserve(clusters.size());
  for (std::size_t i = 0; i < clusters.size(); ++i) {
    steps_.push_back(Step{clusters[i].rel, mgr.cube(perStep[i])});
  }
}

bdd::Bdd PreimageSchedule::relProduct(const bdd::Bdd& target) const {
  CMC_ASSERT(mgr_ != nullptr);
  bdd::Bdd acc = leadingCube_.isTrue() ? target
                                       : mgr_->exists(target, leadingCube_);
  for (const Step& s : steps_) {
    acc = mgr_->andExists(acc, s.rel, s.cube);
  }
  return acc;
}

}  // namespace cmc::symbolic
