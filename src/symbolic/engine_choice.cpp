#include "symbolic/engine_choice.hpp"

#include <algorithm>
#include <string>

namespace cmc::symbolic {

const char* toString(EngineMode m) noexcept {
  switch (m) {
    case EngineMode::Auto:
      return "auto";
    case EngineMode::Partitioned:
      return "partitioned";
    case EngineMode::Monolithic:
      return "monolithic";
    case EngineMode::Bes:
      return "bes";
    case EngineMode::Race:
      return "race";
  }
  return "auto";
}

bool engineModeFromString(std::string_view text, EngineMode* out) noexcept {
  if (text == "auto") {
    *out = EngineMode::Auto;
    return true;
  }
  if (text == "partitioned") {
    *out = EngineMode::Partitioned;
    return true;
  }
  if (text == "monolithic") {
    *out = EngineMode::Monolithic;
    return true;
  }
  if (text == "bes") {
    *out = EngineMode::Bes;
    return true;
  }
  if (text == "race") {
    *out = EngineMode::Race;
    return true;
  }
  return false;
}

EngineChoice chooseEngine(const SymbolicSystem& sys) {
  CMC_ASSERT(sys.ctx != nullptr);
  bdd::Manager& mgr = sys.ctx->mgr();

  EngineChoice c;
  c.conjuncts = sys.partition.conjunctCount();
  c.partitionNodes = sys.partition.nodeCount(mgr);
  c.capNodes = std::max(kProbeFloorNodes, kProbeFactor * c.partitionNodes);

  if (sys.transMaterialized()) {
    // Someone already paid for the product (leaf systems build it eagerly);
    // just compare the measured sizes.
    c.monolithicNodes = mgr.dagSize(sys.monolithic_);
    c.usePartitioned = c.monolithicNodes > c.capNodes;
    c.reason = c.usePartitioned
                   ? "materialized monolithic relation exceeds cap"
                   : "materialized monolithic relation within cap";
    return c;
  }

  // Capped incremental probe: fold the product conjunct by conjunct and
  // bail out when an intermediate crosses the cap.  dagSize() is a full
  // DAG walk (mark + unmark), so walking after *every* conjunct costs as
  // much as the materialization itself on models whose product stays
  // small — exactly the models where auto must match forced-monolithic
  // wall clock.  The manager's O(1) allocation counter is the trigger
  // instead: walk only once the probe has allocated another cap's worth
  // of nodes since the last walk, and once at the end.  A completing
  // probe therefore does O(allocations / cap) walks, and an aborting one
  // still stops within O(cap) allocations of the crossing.
  c.probed = true;
  // The probe is an allocation burst on the caller's manager.  Mid-probe
  // auto-GC is unproductive (the accumulators are externally referenced),
  // so the 25% rule can double the auto-GC threshold — repeatedly — and an
  // abort leaves the dead intermediates in the live-node count until the
  // next sweep.  Both distort BudgetToken's live-node recheck on
  // tight-budget jobs into spurious MemoryOut/Inconclusive verdicts, so
  // the threshold is pinned across the probe and every non-caching exit
  // sweeps the probe's allocations before returning.
  const std::uint64_t savedGcThreshold = mgr.gcThreshold();
  std::uint64_t lastWalkAlloc = mgr.stats().nodesAllocatedTotal;
  const auto abortsProbe = [&](const bdd::Bdd& f) {
    if (mgr.stats().nodesAllocatedTotal - lastWalkAlloc <= c.capNodes) {
      return false;
    }
    lastWalkAlloc = mgr.stats().nodesAllocatedTotal;
    return mgr.dagSize(f) > c.capNodes;
  };
  bool aborted = false;
  bdd::Bdd acc = mgr.bddFalse();
  for (const PartitionedRelation& track : sys.partition.tracks) {
    bdd::Bdd prod = mgr.bddTrue();
    for (const Conjunct& cj : track.conjuncts()) {
      prod &= cj.rel;
      if (abortsProbe(prod)) {
        c.monolithicNodes = mgr.dagSize(prod);  // lower bound at abort
        aborted = true;
        break;
      }
    }
    if (aborted) break;
    acc |= prod;
    if (abortsProbe(acc)) {
      c.monolithicNodes = mgr.dagSize(acc);
      aborted = true;
      break;
    }
  }
  if (aborted) {
    c.probeAborted = true;
    c.usePartitioned = true;
    c.reason = "monolithic probe exceeded cap; keeping partition";
    acc = bdd::Bdd();  // release before the sweep so the nodes actually die
    mgr.setGcThreshold(savedGcThreshold);
    mgr.collectGarbage();
    return c;
  }

  // The sparse trigger can let a product complete past the cap (it is a
  // rate limiter, not the measurement); the final walk is authoritative.
  c.monolithicNodes = mgr.dagSize(acc);
  if (c.monolithicNodes > c.capNodes) {
    c.usePartitioned = true;
    c.reason = "completed monolithic product exceeds cap; keeping partition";
    acc = bdd::Bdd();
    mgr.setGcThreshold(savedGcThreshold);
    mgr.collectGarbage();
    return c;
  }
  c.usePartitioned = false;
  c.reason = "monolithic product fits within cap";
  // The probe just *is* the materialization — cache it so transBdd() and a
  // worker importing this system reuse it instead of rebuilding.  The
  // cached product keeps its intermediates' survivors live, so no forced
  // sweep here: the next natural collection reclaims the rest.
  sys.monolithic_ = std::move(acc);
  mgr.setGcThreshold(savedGcThreshold);
  return c;
}

}  // namespace cmc::symbolic
