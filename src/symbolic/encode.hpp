// Bridges between the explicit and symbolic worlds.
//
//  - symbolicFromExplicit: one boolean variable per atomic proposition, the
//    relation as a disjunction of state-pair cubes.  This is the paper's
//    native view (§2.1) lifted into BDDs.
//  - explicitFromSymbolic: enumerate the (small) state space of a symbolic
//    system, producing an ExplicitSystem over the model's boolean bits plus
//    an AtomSemantics that decodes "var=value" atoms.  Used by the oracle
//    tests to cross-validate the two checkers.
#pragma once

#include "kripke/explicit_checker.hpp"
#include "kripke/explicit_system.hpp"
#include "symbolic/system.hpp"

namespace cmc::symbolic {

/// Lift an explicit system into `ctx`.  Atom names become boolean variables
/// (reused if already declared as booleans in the context — required when
/// several components share atoms).
SymbolicSystem symbolicFromExplicit(Context& ctx,
                                    const kripke::ExplicitSystem& es,
                                    std::string name);

/// An explicit image of a symbolic system: the system over the model's
/// boolean bits plus the semantics hook for enum atoms.  `valid` marks the
/// states whose bit pattern encodes a real value tuple; patterns outside
/// every variable's domain exist in the explicit state space but carry no
/// transitions (the symbolic checker excludes them via the domain
/// constraint — do the same when comparing results).
struct ExplicitImage {
  kripke::ExplicitSystem sys;
  kripke::AtomSemantics semantics;
  kripke::StateSet valid;
};

/// Enumerate the state space of `s` (guarded: at most 2^kMaxExplicitAtoms
/// encoded states) and build its explicit image.
ExplicitImage explicitFromSymbolic(const SymbolicSystem& s);

}  // namespace cmc::symbolic
