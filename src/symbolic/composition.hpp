// Symbolic interleaving composition (paper §3.1), the BDD counterpart of
// kripke::compose:
//   T* = (T_M ∧ frame(Σ*−Σ_M)) ∨ (T_M' ∧ frame(Σ*−Σ_M')) ∨ Id(Σ*)
// over the union alphabet, where frame(S) pins the variables of S and
// Id(Σ*) is the global stutter (the "smallest *reflexive* relation").
#pragma once

#include "symbolic/system.hpp"

namespace cmc::symbolic {

/// M ∘ M'.  Both systems must share the same Context.
SymbolicSystem compose(const SymbolicSystem& m, const SymbolicSystem& mp);

/// Expansion M ∘ (Σ', I) over additional variables (paper §3.2).
SymbolicSystem expand(const SymbolicSystem& m,
                      const std::vector<VarId>& extraVars);

/// Fold a list of components left-to-right (∘ is associative, Lemma 1).
SymbolicSystem composeAll(const std::vector<SymbolicSystem>& systems);

/// Semantic equality of two systems over the same context: same alphabet
/// and the same transition-relation BDD (canonical, so BDD equality is
/// semantic equality).  Used by the lemma validators.
bool sameBehavior(const SymbolicSystem& a, const SymbolicSystem& b);

}  // namespace cmc::symbolic
