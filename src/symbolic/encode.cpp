#include "symbolic/encode.hpp"

#include <algorithm>
#include <memory>

namespace cmc::symbolic {

SymbolicSystem symbolicFromExplicit(Context& ctx,
                                    const kripke::ExplicitSystem& es,
                                    std::string name) {
  std::vector<VarId> vars;
  vars.reserve(es.atomCount());
  for (const std::string& atom : es.atoms()) {
    if (ctx.hasVar(atom)) {
      const VarId id = ctx.varId(atom);
      if (!ctx.variable(id).isBool) {
        throw ModelError("atom '" + atom +
                         "' already declared as a non-boolean variable");
      }
      vars.push_back(id);
    } else {
      vars.push_back(ctx.addBoolVar(atom));
    }
  }

  bdd::Manager& mgr = ctx.mgr();
  auto stateCube = [&](kripke::State s, bool next) {
    bdd::Bdd cube = mgr.bddTrue();
    for (std::size_t i = 0; i < vars.size(); ++i) {
      const std::uint32_t bit = ctx.variable(vars[i]).bits[0];
      const std::uint32_t bv = Context::bddVarOf(bit, next);
      cube &= ((s >> i) & 1u) != 0 ? mgr.bddVar(bv) : mgr.bddNVar(bv);
    }
    return cube;
  };

  bdd::Bdd trans = mgr.bddFalse();
  es.forEachTransition([&](kripke::State from, kripke::State to) {
    trans |= stateCube(from, false) & stateCube(to, true);
  });

  return makeSystem(ctx, std::move(name), std::move(vars), std::move(trans));
}

ExplicitImage explicitFromSymbolic(const SymbolicSystem& s) {
  CMC_ASSERT(s.ctx != nullptr);
  Context& ctx = *s.ctx;
  bdd::Manager& mgr = ctx.mgr();

  // Collect the model bits of the system's variables, in order.
  struct BitRef {
    VarId var;
    std::size_t bitInVar;
    std::uint32_t modelBit;
  };
  std::vector<BitRef> bits;
  for (VarId v : s.vars) {
    const Variable& var = ctx.variable(v);
    for (std::size_t b = 0; b < var.bits.size(); ++b) {
      bits.push_back(BitRef{v, b, var.bits[b]});
    }
  }
  if (bits.size() > kripke::kMaxExplicitAtoms) {
    throw ModelError("symbolic system too large for an explicit image (" +
                     std::to_string(bits.size()) + " bits)");
  }

  std::vector<std::string> atomNames;
  for (const BitRef& b : bits) {
    const Variable& var = ctx.variable(b.var);
    atomNames.push_back(var.bits.size() > 1
                            ? var.name + "." + std::to_string(b.bitInVar)
                            : var.name);
  }

  kripke::ExplicitSystem es(atomNames);

  // Valid explicit states: every variable's code within its domain.
  const std::uint64_t total = std::uint64_t{1} << bits.size();
  auto isValid = [&](std::uint64_t pattern) {
    std::size_t cursor = 0;
    for (VarId v : s.vars) {
      const Variable& var = ctx.variable(v);
      std::size_t code = 0;
      for (std::size_t b = 0; b < var.bits.size(); ++b) {
        code |= ((pattern >> (cursor + b)) & 1u) << b;
      }
      cursor += var.bits.size();
      if (code >= var.values.size()) return false;
    }
    return true;
  };

  std::vector<kripke::State> validStates;
  for (std::uint64_t p = 0; p < total; ++p) {
    if (isValid(p)) validStates.push_back(static_cast<kripke::State>(p));
  }

  // Transitions: evaluate T under each (current, next) assignment.
  const std::size_t numBddVars = 2 * ctx.bitCount();
  std::vector<bool> assignment(numBddVars, false);
  for (kripke::State from : validStates) {
    for (std::size_t i = 0; i < bits.size(); ++i) {
      assignment[Context::bddVarOf(bits[i].modelBit, false)] =
          ((from >> i) & 1u) != 0;
    }
    for (kripke::State to : validStates) {
      for (std::size_t i = 0; i < bits.size(); ++i) {
        assignment[Context::bddVarOf(bits[i].modelBit, true)] =
            ((to >> i) & 1u) != 0;
      }
      if (mgr.eval(s.transBdd(), assignment)) {
        es.addTransition(from, to);
      }
    }
  }

  // Atom semantics: decode "var=value" and bare booleans against the bit
  // layout we just fixed.  Captures copies of the layout, not the context.
  struct Layout {
    std::string name;
    std::vector<std::string> values;
    bool isBool;
    std::vector<std::size_t> explicitBits;  ///< positions in the state mask
  };
  auto layouts = std::make_shared<std::vector<Layout>>();
  {
    std::size_t cursor = 0;
    for (VarId v : s.vars) {
      const Variable& var = ctx.variable(v);
      Layout layout;
      layout.name = var.name;
      layout.values = var.values;
      layout.isBool = var.isBool;
      for (std::size_t b = 0; b < var.bits.size(); ++b) {
        layout.explicitBits.push_back(cursor + b);
      }
      cursor += var.bits.size();
      layouts->push_back(std::move(layout));
    }
  }
  const std::uint64_t stateCount = es.stateCount();

  kripke::AtomSemantics semantics =
      [layouts, stateCount](
          const std::string& text) -> std::optional<kripke::StateSet> {
    const std::size_t pos = text.find('=');
    const std::string name =
        pos == std::string::npos ? text : text.substr(0, pos);
    for (const Layout& layout : *layouts) {
      if (layout.name != name) continue;
      std::size_t expect;
      if (pos == std::string::npos) {
        if (!layout.isBool) {
          throw ModelError("atom '" + text + "' names a non-boolean variable");
        }
        expect = 1;
      } else {
        const std::string value = text.substr(pos + 1);
        auto it =
            std::find(layout.values.begin(), layout.values.end(), value);
        if (it == layout.values.end()) {
          if (layout.isBool && (value == "TRUE" || value == "true")) {
            expect = 1;
          } else if (layout.isBool &&
                     (value == "FALSE" || value == "false")) {
            expect = 0;
          } else {
            throw ModelError("variable '" + name + "' has no value '" +
                             value + "'");
          }
        } else {
          expect = static_cast<std::size_t>(it - layout.values.begin());
        }
      }
      kripke::StateSet out(stateCount, false);
      for (std::uint64_t state = 0; state < stateCount; ++state) {
        std::size_t code = 0;
        for (std::size_t b = 0; b < layout.explicitBits.size(); ++b) {
          code |= ((state >> layout.explicitBits[b]) & 1u) << b;
        }
        out[state] = code == expect;
      }
      return out;
    }
    return std::nullopt;  // fall back to the default (bare bit atoms)
  };

  kripke::StateSet valid(stateCount, false);
  for (kripke::State s : validStates) valid[s] = true;

  return ExplicitImage{std::move(es), std::move(semantics), std::move(valid)};
}

}  // namespace cmc::symbolic
