#include "symbolic/var_table.hpp"

#include <algorithm>

namespace cmc::symbolic {

std::size_t Variable::valueIndex(const std::string& value) const {
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (values[i] == value) return i;
  }
  // Boolean aliases.
  if (isBool) {
    if (value == "TRUE" || value == "true") return 1;
    if (value == "FALSE" || value == "false") return 0;
  }
  throw ModelError("variable '" + name + "' has no value '" + value + "'");
}

bool Variable::hasValue(const std::string& value) const {
  if (std::find(values.begin(), values.end(), value) != values.end()) {
    return true;
  }
  return isBool && (value == "TRUE" || value == "true" || value == "FALSE" ||
                    value == "false");
}

Context::Context(std::size_t bddCapacity, std::size_t bddCacheSize)
    : mgr_(bddCapacity, bddCacheSize) {}

void Context::adoptVariablesFrom(const Context& src) {
  CMC_ASSERT(vars_.empty());
  for (const Variable& v : src.vars_) {
    Variable copy;
    copy.name = v.name;
    copy.values = v.values;
    copy.isBool = v.isBool;
    addVar(std::move(copy));  // recomputes the identical bit layout
  }
}

VarId Context::addVar(Variable v) {
  if (byName_.count(v.name) != 0) {
    throw ModelError("duplicate variable: " + v.name);
  }
  CMC_ASSERT(!v.values.empty());
  std::size_t nbits = 1;
  while ((std::size_t{1} << nbits) < v.values.size()) ++nbits;
  v.bits.resize(nbits);
  for (std::size_t b = 0; b < nbits; ++b) {
    v.bits[b] = static_cast<std::uint32_t>(bitCount_++);
  }
  mgr_.ensureVars(static_cast<std::uint32_t>(2 * bitCount_));
  const VarId id = static_cast<VarId>(vars_.size());
  byName_.emplace(v.name, id);
  vars_.push_back(std::move(v));
  swapPermValid_ = false;  // bit universe grew
  return id;
}

VarId Context::addBoolVar(const std::string& name) {
  Variable v;
  v.name = name;
  v.values = {"0", "1"};
  v.isBool = true;
  return addVar(std::move(v));
}

VarId Context::addEnumVar(const std::string& name,
                          std::vector<std::string> values) {
  if (values.empty()) {
    throw ModelError("enum variable '" + name + "' needs at least one value");
  }
  Variable v;
  v.name = name;
  v.values = std::move(values);
  return addVar(std::move(v));
}

bool Context::hasVar(const std::string& name) const {
  return byName_.count(name) != 0;
}

VarId Context::varId(const std::string& name) const {
  auto it = byName_.find(name);
  if (it == byName_.end()) {
    throw ModelError("unknown variable: " + name);
  }
  return it->second;
}

bdd::Bdd Context::varEqIndex(VarId id, std::size_t valueIdx, bool next) {
  const Variable& v = variable(id);
  CMC_ASSERT(valueIdx < v.values.size());
  bdd::Bdd acc = mgr_.bddTrue();
  for (std::size_t b = 0; b < v.bits.size(); ++b) {
    const std::uint32_t bv = bddVarOf(v.bits[b], next);
    acc &= ((valueIdx >> b) & 1u) != 0 ? mgr_.bddVar(bv) : mgr_.bddNVar(bv);
  }
  return acc;
}

bdd::Bdd Context::varEq(VarId id, const std::string& value, bool next) {
  return varEqIndex(id, variable(id).valueIndex(value), next);
}

bdd::Bdd Context::domain(VarId id, bool next) {
  const Variable& v = variable(id);
  const std::size_t capacity = std::size_t{1} << v.bits.size();
  if (capacity == v.values.size()) return mgr_.bddTrue();
  bdd::Bdd acc = mgr_.bddFalse();
  for (std::size_t i = 0; i < v.values.size(); ++i) {
    acc |= varEqIndex(id, i, next);
  }
  return acc;
}

bdd::Bdd Context::domainAll(const std::vector<VarId>& ids, bool next) {
  bdd::Bdd acc = mgr_.bddTrue();
  for (VarId id : ids) acc &= domain(id, next);
  return acc;
}

bdd::Bdd Context::frame(VarId id) {
  const Variable& v = variable(id);
  bdd::Bdd acc = mgr_.bddTrue();
  for (std::uint32_t bit : v.bits) {
    const bdd::Bdd cur = mgr_.bddVar(bddVarOf(bit, false));
    const bdd::Bdd nxt = mgr_.bddVar(bddVarOf(bit, true));
    acc &= cur.iff(nxt);
  }
  return acc;
}

bdd::Bdd Context::frameAll(const std::vector<VarId>& ids) {
  bdd::Bdd acc = mgr_.bddTrue();
  for (VarId id : ids) acc &= frame(id);
  return acc;
}

bdd::Bdd Context::currentCube(const std::vector<VarId>& ids) {
  std::vector<std::uint32_t> bddVars;
  for (VarId id : ids) {
    for (std::uint32_t bit : variable(id).bits) {
      bddVars.push_back(bddVarOf(bit, false));
    }
  }
  return mgr_.cube(bddVars);
}

bdd::Bdd Context::nextCube(const std::vector<VarId>& ids) {
  std::vector<std::uint32_t> bddVars;
  for (VarId id : ids) {
    for (std::uint32_t bit : variable(id).bits) {
      bddVars.push_back(bddVarOf(bit, true));
    }
  }
  return mgr_.cube(bddVars);
}

std::uint32_t Context::swapPermutation(const std::vector<VarId>& ids) {
  std::vector<VarId> key(ids);
  std::sort(key.begin(), key.end());
  key.erase(std::unique(key.begin(), key.end()), key.end());

  auto it = partialSwapIds_.find(key);
  if (it != partialSwapIds_.end() && it->second.second == bitCount_) {
    return it->second.first;
  }
  std::vector<std::uint32_t> perm(2 * bitCount_);
  for (std::size_t v = 0; v < perm.size(); ++v) {
    perm[v] = static_cast<std::uint32_t>(v);
  }
  for (VarId id : key) {
    for (std::uint32_t bit : variable(id).bits) {
      const std::uint32_t cur = bddVarOf(bit, false);
      const std::uint32_t nxt = bddVarOf(bit, true);
      perm[cur] = nxt;
      perm[nxt] = cur;
    }
  }
  const std::uint32_t permId = mgr_.registerPermutation(std::move(perm));
  partialSwapIds_[std::move(key)] = {permId, bitCount_};
  return permId;
}

std::uint32_t Context::swapPermutation() {
  if (!swapPermValid_ || swapPermBits_ != bitCount_) {
    std::vector<std::uint32_t> perm(2 * bitCount_);
    for (std::size_t b = 0; b < bitCount_; ++b) {
      perm[2 * b] = static_cast<std::uint32_t>(2 * b + 1);
      perm[2 * b + 1] = static_cast<std::uint32_t>(2 * b);
    }
    swapPermId_ = mgr_.registerPermutation(std::move(perm));
    swapPermBits_ = bitCount_;
    swapPermValid_ = true;
  }
  return swapPermId_;
}

bdd::Bdd Context::atomBdd(const std::string& atomText, bool next) {
  const std::size_t pos = atomText.find('=');
  if (pos == std::string::npos) {
    const VarId id = varId(atomText);
    if (!variable(id).isBool) {
      throw ModelError("atom '" + atomText +
                       "' names a non-boolean variable; use " + atomText +
                       "=value");
    }
    return varEqIndex(id, 1, next);
  }
  const std::string name = atomText.substr(0, pos);
  const std::string value = atomText.substr(pos + 1);
  return varEq(varId(name), value, next);
}

std::vector<std::string> Context::bddVarNames() const {
  std::vector<std::string> names(2 * bitCount_);
  for (const Variable& v : vars_) {
    for (std::size_t b = 0; b < v.bits.size(); ++b) {
      std::string base = v.name;
      if (v.bits.size() > 1) base += "." + std::to_string(b);
      names[2 * v.bits[b]] = base;
      names[2 * v.bits[b] + 1] = base + "'";
    }
  }
  return names;
}

}  // namespace cmc::symbolic
