#include "symbolic/checker.hpp"

#include <algorithm>
#include <iterator>

#include "bdd/io.hpp"
#include "symbolic/trace.hpp"
#include "util/timer.hpp"

namespace cmc::symbolic {

using ctl::FormulaPtr;
using ctl::Op;

const char* toString(CancelReason reason) noexcept {
  switch (reason) {
    case CancelReason::Deadline: return "deadline";
    case CancelReason::NodeBudget: return "node-budget";
    case CancelReason::External: return "external";
  }
  return "unknown";
}

Checker::Checker(const SymbolicSystem& sys, CheckerOptions opts)
    : sys_(sys),
      opts_(opts),
      domain_(sys.stateDomain()),
      nextVars_(sys.ctx->nextCube(sys.vars)),
      swapPerm_(sys.ctx->swapPermutation()) {
  CMC_ASSERT(sys.ctx != nullptr);
  if (!opts_.usePartitionedTrans || sys.partition.empty()) return;
  partitioned_ = true;
  Context& ctx = *sys.ctx;
  bdd::Manager& mgr = ctx.mgr();

  // Generic fold: every next-state bit of the alphabet is quantified.
  std::vector<std::uint32_t> quantVars;
  for (VarId v : sys.vars) {
    for (std::uint32_t bit : ctx.variable(v).bits) {
      quantVars.push_back(Context::bddVarOf(bit, /*next=*/true));
    }
  }
  std::sort(quantVars.begin(), quantVars.end());

  // When the system's alphabet covers the whole context (every composed
  // system) and a track's frame conjuncts are tagged, the frames are
  // handled by *substitution* instead of by folding: each frame conjunct
  // satisfies ∃v'. (v'=v ∧ dom) ∧ X' = dom(v) ∧ X[v'↦v], so the track's
  // preimage is  dom(framed) ∧ ∃V'_owned (core ∧ partial-swap(X))  and the
  // frame BDDs never enter the fold.  The stutter track degenerates to
  // dom(Σ) ∧ X — core empty, nothing owned.  A component checker in a
  // shared context keeps the generic fold: its targets may mention foreign
  // context bits the substitution would wrongly leave unprimed.
  const bool coversContext = sys.vars.size() == ctx.varCount();
  tracks_.reserve(sys.partition.tracks.size());
  for (const PartitionedRelation& t : sys.partition.tracks) {
    if (coversContext && t.framesTagged()) {
      std::vector<VarId> framed = t.frameVars();
      std::sort(framed.begin(), framed.end());
      std::vector<VarId> owned;
      std::set_difference(sys.vars.begin(), sys.vars.end(), framed.begin(),
                          framed.end(), std::back_inserter(owned));
      std::vector<std::uint32_t> quant;
      for (VarId v : owned) {
        for (std::uint32_t bit : ctx.variable(v).bits) {
          quant.push_back(Context::bddVarOf(bit, /*next=*/true));
        }
      }
      std::sort(quant.begin(), quant.end());
      PartitionedRelation core = t.core();
      core.clusterGreedy(opts_.clusterThreshold);
      tracks_.push_back(TrackPre{ctx.swapPermutation(owned), /*local=*/true,
                                 PreimageSchedule(mgr, std::move(core), quant)});
    } else {
      PartitionedRelation track = t;
      track.clusterGreedy(opts_.clusterThreshold);
      tracks_.push_back(
          TrackPre{swapPerm_, /*local=*/false,
                   PreimageSchedule(mgr, std::move(track), quantVars)});
    }
  }
}

bdd::Bdd Checker::preE(const bdd::Bdd& target) {
  pollCancel();
  bdd::Manager& mgr = sys_.ctx->mgr();
  if (!partitioned_) {
    const bdd::Bdd primed = mgr.permute(target, swapPerm_);
    return mgr.andExists(sys_.transBdd(), primed, nextVars_);
  }
  // Preimage distributes over the disjunctive tracks; each track folds
  // its core clusters with early quantification over a partially swapped
  // target and never materializes the monolithic relation.  Local
  // contributions are disjoined first and restricted to the state domain
  // once (see TrackPre).
  bdd::Bdd out = mgr.bddFalse();
  bdd::Bdd localAcc = mgr.bddFalse();
  for (const TrackPre& t : tracks_) {
    const bdd::Bdd pre = t.schedule.relProduct(mgr.permute(target, t.permId));
    (t.local ? localAcc : out) |= pre;
  }
  if (!localAcc.isFalse()) out |= localAcc & domain_;
  return out;
}

bdd::Bdd Checker::untilE(const bdd::Bdd& f, const bdd::Bdd& g) {
  // lfp Q. g ∨ (f ∧ EX Q)
  bdd::Bdd q = g;
  for (;;) {
    pollCancel();
    bdd::Bdd next = q | (f & preE(q));
    if (next == q) return q;
    q = std::move(next);
  }
}

bdd::Bdd Checker::fairEG(const bdd::Bdd& region,
                         const std::vector<bdd::Bdd>& fairIn) {
  // νZ. region ∧ ⋀_F EX E[region U (Z ∧ F)]; no constraints degenerates to
  // plain EG via the single constraint {true}.
  std::vector<bdd::Bdd> fair = fairIn;
  if (fair.empty()) fair.push_back(sys_.ctx->mgr().bddTrue());
  bdd::Bdd z = region;
  for (;;) {
    pollCancel();
    bdd::Bdd next = z;
    for (const bdd::Bdd& fc : fair) {
      next &= region & preE(untilE(region, next & fc));
    }
    if (next == z) return z;
    z = std::move(next);
  }
}

bdd::Bdd Checker::fairStates(const std::vector<ctl::FormulaPtr>& fairness) {
  std::vector<bdd::Bdd> fairSets;
  const bdd::Bdd all = sys_.ctx->mgr().bddTrue();
  for (const FormulaPtr& f : fairness) {
    fairSets.push_back(satRec(f, {}, all));
  }
  if (fairSets.empty()) return all;
  return fairEG(all, fairSets);
}

bdd::Bdd Checker::sat(const ctl::FormulaPtr& f,
                      const std::vector<ctl::FormulaPtr>& fairness) {
  std::vector<bdd::Bdd> fairSets;
  const bdd::Bdd all = sys_.ctx->mgr().bddTrue();
  for (const FormulaPtr& fc : fairness) {
    fairSets.push_back(satRec(fc, {}, all));
  }
  const bdd::Bdd fair = fairSets.empty() ? all : fairEG(all, fairSets);
  return satRec(f, fairSets, fair);
}

bdd::Bdd Checker::satRec(const ctl::FormulaPtr& f,
                         const std::vector<bdd::Bdd>& fairSets,
                         const bdd::Bdd& fair) {
  CMC_ASSERT(f != nullptr);
  bdd::Manager& mgr = sys_.ctx->mgr();
  switch (f->op()) {
    case Op::True:
      return mgr.bddTrue();
    case Op::False:
      return mgr.bddFalse();
    case Op::Atom:
      return sys_.ctx->atomBdd(f->atom());
    case Op::Not:
      return !satRec(f->lhs(), fairSets, fair);
    case Op::And:
      return satRec(f->lhs(), fairSets, fair) &
             satRec(f->rhs(), fairSets, fair);
    case Op::Or:
      return satRec(f->lhs(), fairSets, fair) |
             satRec(f->rhs(), fairSets, fair);
    case Op::Implies:
      return satRec(f->lhs(), fairSets, fair)
          .implies(satRec(f->rhs(), fairSets, fair));
    case Op::Iff:
      return satRec(f->lhs(), fairSets, fair)
          .iff(satRec(f->rhs(), fairSets, fair));
    case Op::EX:
      return preE(satRec(f->lhs(), fairSets, fair) & fair);
    case Op::AX:
      return !preE((!satRec(f->lhs(), fairSets, fair)) & fair);
    case Op::EU:
      return untilE(satRec(f->lhs(), fairSets, fair),
                    satRec(f->rhs(), fairSets, fair) & fair);
    case Op::EF:
      return untilE(mgr.bddTrue(),
                    satRec(f->lhs(), fairSets, fair) & fair);
    case Op::EG:
      return fairEG(satRec(f->lhs(), fairSets, fair), fairSets);
    case Op::AF:
      return !fairEG(!satRec(f->lhs(), fairSets, fair), fairSets);
    case Op::AG:
      return !untilE(mgr.bddTrue(),
                     (!satRec(f->lhs(), fairSets, fair)) & fair);
    case Op::AU: {
      // A[f U g] = !(E[!g U (!f & !g)] | EG !g), fair throughout.
      const bdd::Bdd sf = satRec(f->lhs(), fairSets, fair);
      const bdd::Bdd sg = satRec(f->rhs(), fairSets, fair);
      const bdd::Bdd ng = !sg;
      const bdd::Bdd part1 = untilE(ng, ((!sf) & ng) & fair);
      const bdd::Bdd part2 = fairEG(ng, fairSets);
      return !(part1 | part2);
    }
  }
  throw Error("satRec: unreachable");
}

bdd::Bdd Checker::violations(const ctl::Restriction& r,
                             const ctl::FormulaPtr& f) {
  const FormulaPtr init = r.init != nullptr ? r.init : ctl::mkTrue();
  const bdd::Bdd satInit = sat(init, r.fairness);
  const bdd::Bdd satF = sat(f, r.fairness);
  return domain_ & satInit & !satF;
}

bool Checker::holds(const ctl::Restriction& r, const ctl::FormulaPtr& f) {
  return violations(r, f).isFalse();
}

bool Checker::holds(const ctl::Spec& spec) { return holds(spec.r, spec.f); }

CheckResult Checker::check(const ctl::Spec& spec) {
  bdd::Manager& mgr = sys_.ctx->mgr();
  mgr.resetPeakNodes();
  const std::uint64_t lookupsBefore = mgr.stats().cacheLookups;
  const std::uint64_t hitsBefore = mgr.stats().cacheHits;
  WallTimer timer;
  CheckResult result;
  result.holds = holds(spec.r, spec.f);
  result.seconds = timer.seconds();
  const bdd::ManagerStats& stats = mgr.stats();
  result.bddNodesAllocated = stats.nodesAllocatedTotal;
  result.transNodes = sys_.transNodeCount();
  result.peakLiveNodes = stats.peakNodes;
  const std::uint64_t lookups = stats.cacheLookups - lookupsBefore;
  result.cacheHitRate =
      lookups == 0 ? 0.0
                   : static_cast<double>(stats.cacheHits - hitsBefore) /
                         static_cast<double>(lookups);
  result.usedPartition = usesPartition();
  result.clusterThreshold = opts_.clusterThreshold;
  result.specText = ctl::toString(spec.f);
  result.specName = spec.name;
  return result;
}

bool Checker::holdsReachable(const ctl::Restriction& r,
                             const ctl::FormulaPtr& f) {
  const FormulaPtr init = r.init != nullptr ? r.init : ctl::mkTrue();
  TraceBuilder builder(sys_);
  const bdd::Bdd reach =
      builder.reachable(sat(init, r.fairness) & domain_);
  const bdd::Bdd satF = sat(f, r.fairness);
  return (reach & sat(init, r.fairness) & !satF).isFalse();
}

std::optional<std::string> Checker::counterexampleTrace(
    const ctl::Restriction& r, const ctl::FormulaPtr& f) {
  if (f->op() != ctl::Op::AG || !ctl::isPropositional(f->lhs())) {
    return std::nullopt;
  }
  const FormulaPtr init = r.init != nullptr ? r.init : ctl::mkTrue();
  TraceBuilder builder(sys_);
  const bdd::Bdd good = sat(f->lhs(), r.fairness);
  const bdd::Bdd initSet = sat(init, r.fairness) & domain_;

  bool trivialFairness = true;
  for (const FormulaPtr& fc : r.fairness) {
    trivialFairness = trivialFairness && fc->op() == ctl::Op::True;
  }
  if (trivialFairness) {
    const std::optional<Trace> trace = builder.agCounterexample(initSet, good);
    if (!trace.has_value()) return std::nullopt;
    return trace->toString();
  }

  // Under a nontrivial fairness restriction a violation of AG good is a
  // *fair* path reaching ¬good, so the bad state must admit a fair
  // continuation (lie in the Emerson-Lei fixpoint) and the trace is a
  // lasso whose cycle visits every fairness constraint.
  std::vector<bdd::Bdd> fairSets;
  const bdd::Bdd all = sys_.ctx->mgr().bddTrue();
  for (const FormulaPtr& fc : r.fairness) {
    fairSets.push_back(satRec(fc, {}, all));
  }
  const bdd::Bdd fair = fairEG(domain_, fairSets);
  const bdd::Bdd bad = (!good) & fair;
  const std::optional<Trace> prefix = builder.path(initSet, bad, all);
  if (!prefix.has_value()) return std::nullopt;
  const std::optional<Trace> lasso =
      builder.fairLasso(builder.stateBdd(prefix->states.back()), fair,
                        fairSets);
  if (!lasso.has_value()) return std::nullopt;
  Trace full = *prefix;
  // lasso->states[0] re-picks the prefix endpoint (a singleton set).
  for (std::size_t i = 1; i < lasso->states.size(); ++i) {
    full.states.push_back(lasso->states[i]);
  }
  full.loopIndex = prefix->states.size() - 1 + *lasso->loopIndex;
  return full.toString();
}

std::optional<std::string> Checker::violationWitness(
    const ctl::Restriction& r, const ctl::FormulaPtr& f) {
  const bdd::Bdd bad = violations(r, f);
  if (bad.isFalse()) return std::nullopt;
  bdd::Manager& mgr = sys_.ctx->mgr();
  const std::vector<std::int8_t> cube = mgr.pickCube(bad);
  return bdd::cubeToString(cube, sys_.ctx->bddVarNames());
}

}  // namespace cmc::symbolic
