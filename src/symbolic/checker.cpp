#include "symbolic/checker.hpp"

#include "bdd/io.hpp"
#include "symbolic/trace.hpp"
#include "util/timer.hpp"

namespace cmc::symbolic {

using ctl::FormulaPtr;
using ctl::Op;

Checker::Checker(const SymbolicSystem& sys)
    : sys_(sys),
      domain_(sys.stateDomain()),
      nextVars_(sys.ctx->nextCube(sys.vars)),
      swapPerm_(sys.ctx->swapPermutation()) {
  CMC_ASSERT(sys.ctx != nullptr);
}

bdd::Bdd Checker::preE(const bdd::Bdd& target) {
  bdd::Manager& mgr = sys_.ctx->mgr();
  const bdd::Bdd primed = mgr.permute(target, swapPerm_);
  return mgr.andExists(sys_.trans, primed, nextVars_);
}

bdd::Bdd Checker::untilE(const bdd::Bdd& f, const bdd::Bdd& g) {
  // lfp Q. g ∨ (f ∧ EX Q)
  bdd::Bdd q = g;
  for (;;) {
    bdd::Bdd next = q | (f & preE(q));
    if (next == q) return q;
    q = std::move(next);
  }
}

bdd::Bdd Checker::fairEG(const bdd::Bdd& region,
                         const std::vector<bdd::Bdd>& fairIn) {
  // νZ. region ∧ ⋀_F EX E[region U (Z ∧ F)]; no constraints degenerates to
  // plain EG via the single constraint {true}.
  std::vector<bdd::Bdd> fair = fairIn;
  if (fair.empty()) fair.push_back(sys_.ctx->mgr().bddTrue());
  bdd::Bdd z = region;
  for (;;) {
    bdd::Bdd next = z;
    for (const bdd::Bdd& fc : fair) {
      next &= region & preE(untilE(region, next & fc));
    }
    if (next == z) return z;
    z = std::move(next);
  }
}

bdd::Bdd Checker::fairStates(const std::vector<ctl::FormulaPtr>& fairness) {
  std::vector<bdd::Bdd> fairSets;
  const bdd::Bdd all = sys_.ctx->mgr().bddTrue();
  for (const FormulaPtr& f : fairness) {
    fairSets.push_back(satRec(f, {}, all));
  }
  if (fairSets.empty()) return all;
  return fairEG(all, fairSets);
}

bdd::Bdd Checker::sat(const ctl::FormulaPtr& f,
                      const std::vector<ctl::FormulaPtr>& fairness) {
  std::vector<bdd::Bdd> fairSets;
  const bdd::Bdd all = sys_.ctx->mgr().bddTrue();
  for (const FormulaPtr& fc : fairness) {
    fairSets.push_back(satRec(fc, {}, all));
  }
  const bdd::Bdd fair = fairSets.empty() ? all : fairEG(all, fairSets);
  return satRec(f, fairSets, fair);
}

bdd::Bdd Checker::satRec(const ctl::FormulaPtr& f,
                         const std::vector<bdd::Bdd>& fairSets,
                         const bdd::Bdd& fair) {
  CMC_ASSERT(f != nullptr);
  bdd::Manager& mgr = sys_.ctx->mgr();
  switch (f->op()) {
    case Op::True:
      return mgr.bddTrue();
    case Op::False:
      return mgr.bddFalse();
    case Op::Atom:
      return sys_.ctx->atomBdd(f->atom());
    case Op::Not:
      return !satRec(f->lhs(), fairSets, fair);
    case Op::And:
      return satRec(f->lhs(), fairSets, fair) &
             satRec(f->rhs(), fairSets, fair);
    case Op::Or:
      return satRec(f->lhs(), fairSets, fair) |
             satRec(f->rhs(), fairSets, fair);
    case Op::Implies:
      return satRec(f->lhs(), fairSets, fair)
          .implies(satRec(f->rhs(), fairSets, fair));
    case Op::Iff:
      return satRec(f->lhs(), fairSets, fair)
          .iff(satRec(f->rhs(), fairSets, fair));
    case Op::EX:
      return preE(satRec(f->lhs(), fairSets, fair) & fair);
    case Op::AX:
      return !preE((!satRec(f->lhs(), fairSets, fair)) & fair);
    case Op::EU:
      return untilE(satRec(f->lhs(), fairSets, fair),
                    satRec(f->rhs(), fairSets, fair) & fair);
    case Op::EF:
      return untilE(mgr.bddTrue(),
                    satRec(f->lhs(), fairSets, fair) & fair);
    case Op::EG:
      return fairEG(satRec(f->lhs(), fairSets, fair), fairSets);
    case Op::AF:
      return !fairEG(!satRec(f->lhs(), fairSets, fair), fairSets);
    case Op::AG:
      return !untilE(mgr.bddTrue(),
                     (!satRec(f->lhs(), fairSets, fair)) & fair);
    case Op::AU: {
      // A[f U g] = !(E[!g U (!f & !g)] | EG !g), fair throughout.
      const bdd::Bdd sf = satRec(f->lhs(), fairSets, fair);
      const bdd::Bdd sg = satRec(f->rhs(), fairSets, fair);
      const bdd::Bdd ng = !sg;
      const bdd::Bdd part1 = untilE(ng, ((!sf) & ng) & fair);
      const bdd::Bdd part2 = fairEG(ng, fairSets);
      return !(part1 | part2);
    }
  }
  throw Error("satRec: unreachable");
}

bdd::Bdd Checker::violations(const ctl::Restriction& r,
                             const ctl::FormulaPtr& f) {
  const FormulaPtr init = r.init != nullptr ? r.init : ctl::mkTrue();
  const bdd::Bdd satInit = sat(init, r.fairness);
  const bdd::Bdd satF = sat(f, r.fairness);
  return domain_ & satInit & !satF;
}

bool Checker::holds(const ctl::Restriction& r, const ctl::FormulaPtr& f) {
  return violations(r, f).isFalse();
}

bool Checker::holds(const ctl::Spec& spec) { return holds(spec.r, spec.f); }

CheckResult Checker::check(const ctl::Spec& spec) {
  WallTimer timer;
  CheckResult result;
  result.holds = holds(spec.r, spec.f);
  result.seconds = timer.seconds();
  result.bddNodesAllocated = sys_.ctx->mgr().stats().nodesAllocatedTotal;
  result.transNodes = sys_.transNodeCount();
  result.specText = ctl::toString(spec.f);
  result.specName = spec.name;
  return result;
}

bool Checker::holdsReachable(const ctl::Restriction& r,
                             const ctl::FormulaPtr& f) {
  const FormulaPtr init = r.init != nullptr ? r.init : ctl::mkTrue();
  TraceBuilder builder(sys_);
  const bdd::Bdd reach =
      builder.reachable(sat(init, r.fairness) & domain_);
  const bdd::Bdd satF = sat(f, r.fairness);
  return (reach & sat(init, r.fairness) & !satF).isFalse();
}

std::optional<std::string> Checker::counterexampleTrace(
    const ctl::Restriction& r, const ctl::FormulaPtr& f) {
  if (f->op() != ctl::Op::AG || !ctl::isPropositional(f->lhs())) {
    return std::nullopt;
  }
  const FormulaPtr init = r.init != nullptr ? r.init : ctl::mkTrue();
  TraceBuilder builder(sys_);
  const bdd::Bdd good = sat(f->lhs(), r.fairness);
  const std::optional<Trace> trace =
      builder.agCounterexample(sat(init, r.fairness) & domain_, good);
  if (!trace.has_value()) return std::nullopt;
  return trace->toString();
}

std::optional<std::string> Checker::violationWitness(
    const ctl::Restriction& r, const ctl::FormulaPtr& f) {
  const bdd::Bdd bad = violations(r, f);
  if (bad.isFalse()) return std::nullopt;
  bdd::Manager& mgr = sys_.ctx->mgr();
  const std::vector<std::int8_t> cube = mgr.pickCube(bad);
  return bdd::cubeToString(cube, sys_.ctx->bddVarNames());
}

}  // namespace cmc::symbolic
