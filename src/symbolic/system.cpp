#include "symbolic/system.hpp"

#include <algorithm>
#include <unordered_set>

#include "bdd/io.hpp"

namespace cmc::symbolic {

const bdd::Bdd& SymbolicSystem::transBdd() const {
  if (monolithic_.isNull()) {
    CMC_ASSERT(ctx != nullptr);
    CMC_ASSERT(!partition.empty());
    monolithic_ = partition.monolithic(ctx->mgr());
  }
  return monolithic_;
}

bdd::Bdd SymbolicSystem::stateDomain() const {
  CMC_ASSERT(ctx != nullptr);
  return ctx->domainAll(vars, /*next=*/false);
}

bdd::Bdd SymbolicSystem::nextDomain() const {
  CMC_ASSERT(ctx != nullptr);
  return ctx->domainAll(vars, /*next=*/true);
}

bool SymbolicSystem::isReflexive() const {
  CMC_ASSERT(ctx != nullptr);
  bdd::Bdd stutter =
      ctx->frameAll(vars) & stateDomain() & nextDomain();
  return stutter.subsetOf(transBdd());
}

bool SymbolicSystem::isTotal() const {
  CMC_ASSERT(ctx != nullptr);
  bdd::Bdd hasSucc =
      ctx->mgr().exists(transBdd(), ctx->nextCube(vars));
  return stateDomain().subsetOf(hasSucc);
}

std::uint64_t SymbolicSystem::transNodeCount() const {
  CMC_ASSERT(ctx != nullptr);
  if (transMaterialized()) return ctx->mgr().dagSize(monolithic_);
  return partition.nodeCount(ctx->mgr());
}

double SymbolicSystem::stateCount() const {
  CMC_ASSERT(ctx != nullptr);
  double count = 1.0;
  for (VarId v : vars) {
    count *= static_cast<double>(ctx->variable(v).values.size());
  }
  return count;
}

namespace {

/// Throw unless `rel`'s support stays within the current/next bits of
/// `vars`.
void checkAlphabet(Context& ctx, const std::string& name,
                   const std::vector<VarId>& vars, const bdd::Bdd& rel) {
  std::unordered_set<std::uint32_t> allowed;
  for (VarId v : vars) {
    for (std::uint32_t bit : ctx.variable(v).bits) {
      allowed.insert(Context::bddVarOf(bit, false));
      allowed.insert(Context::bddVarOf(bit, true));
    }
  }
  for (std::uint32_t bv : ctx.mgr().support(rel)) {
    if (allowed.count(bv) == 0) {
      throw ModelError("system '" + name +
                       "': transition relation mentions a variable outside "
                       "its alphabet (BDD var " +
                       std::to_string(bv) + ")");
    }
  }
}

}  // namespace

SymbolicSystem makeSystem(Context& ctx, std::string name,
                          std::vector<VarId> vars, bdd::Bdd trans) {
  std::sort(vars.begin(), vars.end());
  vars.erase(std::unique(vars.begin(), vars.end()), vars.end());
  checkAlphabet(ctx, name, vars, trans);

  SymbolicSystem sys;
  sys.ctx = &ctx;
  sys.name = std::move(name);
  sys.vars = std::move(vars);
  sys.monolithic_ = trans & ctx.domainAll(sys.vars, false) &
                    ctx.domainAll(sys.vars, true);
  sys.partition.tracks.push_back(
      PartitionedRelation::of({sys.monolithic_}));
  return sys;
}

SymbolicSystem makeSystem(Context& ctx, std::string name,
                          std::vector<VarId> vars,
                          std::vector<bdd::Bdd> conjuncts) {
  std::sort(vars.begin(), vars.end());
  vars.erase(std::unique(vars.begin(), vars.end()), vars.end());

  PartitionedRelation track;
  for (bdd::Bdd& c : conjuncts) {
    checkAlphabet(ctx, name, vars, c);
    if (c.isTrue()) continue;  // no constraint, no cluster
    track.append(std::move(c));
  }
  // Per-variable domain constraints (both columns) keep the alphabet
  // invariant without conjoining anything into the component conjuncts.
  for (VarId v : vars) {
    const bdd::Bdd dom = ctx.domain(v, false) & ctx.domain(v, true);
    if (!dom.isTrue()) track.append(dom);
  }

  SymbolicSystem sys;
  sys.ctx = &ctx;
  sys.name = std::move(name);
  sys.vars = std::move(vars);
  sys.partition.tracks.push_back(std::move(track));
  return sys;  // the monolithic BDD stays lazy
}

bdd::Bdd frameConjunct(Context& ctx, VarId v) {
  return ctx.frame(v) & ctx.domain(v, /*next=*/false) &
         ctx.domain(v, /*next=*/true);
}

PartitionedRelation stutterTrack(Context& ctx,
                                 const std::vector<VarId>& vars) {
  PartitionedRelation track =
      PartitionedRelation::of({}, /*frameOnly=*/true);
  for (VarId v : vars) track.appendFrame(frameConjunct(ctx, v), v);
  return track;
}

SymbolicSystem identitySystem(Context& ctx, std::vector<VarId> vars,
                              std::string name) {
  std::sort(vars.begin(), vars.end());
  vars.erase(std::unique(vars.begin(), vars.end()), vars.end());
  SymbolicSystem sys;
  sys.ctx = &ctx;
  sys.name = std::move(name);
  sys.vars = std::move(vars);
  sys.partition.tracks.push_back(stutterTrack(ctx, sys.vars));
  sys.monolithic_ = sys.partition.tracks.front().product(ctx.mgr());
  return sys;
}

void addReflexive(SymbolicSystem& sys) {
  CMC_ASSERT(sys.ctx != nullptr);
  if (sys.transMaterialized()) {
    sys.monolithic_ |= sys.ctx->frameAll(sys.vars) & sys.stateDomain() &
                       sys.nextDomain();
  }
  if (!sys.partition.hasStutterTrack()) {
    sys.partition.tracks.push_back(stutterTrack(*sys.ctx, sys.vars));
  }
}

SymbolicSystem importSystem(Context& dst, bdd::Importer& imp,
                            const SymbolicSystem& src, bool wantMonolithic) {
  SymbolicSystem out;
  out.ctx = &dst;
  out.name = src.name;
  out.vars = src.vars;  // ids match by the adoptVariablesFrom precondition

  for (const PartitionedRelation& t : src.partition.tracks) {
    PartitionedRelation track = PartitionedRelation::of({}, t.frameOnly());
    if (t.framesTagged()) {
      // Frames were recorded in append order, so replaying the conjunct
      // sequence consumes frameVars() front to back.
      std::size_t fi = 0;
      for (const Conjunct& c : t.conjuncts()) {
        bdd::Bdd rel = imp.importIndex(c.rel.index());
        if (c.isFrame) {
          track.appendFrame(std::move(rel), t.frameVars()[fi++]);
        } else {
          track.append(std::move(rel));
        }
      }
      CMC_ASSERT(fi == t.frameVars().size());
    } else {
      for (const Conjunct& c : t.conjuncts()) {
        track.append(imp.importIndex(c.rel.index()), c.isFrame);
      }
    }
    out.partition.tracks.push_back(std::move(track));
  }

  if (wantMonolithic && src.transMaterialized()) {
    out.monolithic_ = imp.importIndex(src.monolithic_.index());
  }
  return out;
}

}  // namespace cmc::symbolic
