#include "symbolic/system.hpp"

#include <algorithm>
#include <unordered_set>

namespace cmc::symbolic {

bdd::Bdd SymbolicSystem::stateDomain() const {
  CMC_ASSERT(ctx != nullptr);
  return ctx->domainAll(vars, /*next=*/false);
}

bdd::Bdd SymbolicSystem::nextDomain() const {
  CMC_ASSERT(ctx != nullptr);
  return ctx->domainAll(vars, /*next=*/true);
}

bool SymbolicSystem::isReflexive() const {
  CMC_ASSERT(ctx != nullptr);
  bdd::Bdd stutter =
      ctx->frameAll(vars) & stateDomain() & nextDomain();
  return stutter.subsetOf(trans);
}

bool SymbolicSystem::isTotal() const {
  CMC_ASSERT(ctx != nullptr);
  bdd::Bdd hasSucc =
      ctx->mgr().exists(trans, ctx->nextCube(vars));
  return stateDomain().subsetOf(hasSucc);
}

std::uint64_t SymbolicSystem::transNodeCount() const {
  CMC_ASSERT(ctx != nullptr);
  return ctx->mgr().dagSize(trans);
}

double SymbolicSystem::stateCount() const {
  CMC_ASSERT(ctx != nullptr);
  double count = 1.0;
  for (VarId v : vars) {
    count *= static_cast<double>(ctx->variable(v).values.size());
  }
  return count;
}

SymbolicSystem makeSystem(Context& ctx, std::string name,
                          std::vector<VarId> vars, bdd::Bdd trans) {
  std::sort(vars.begin(), vars.end());
  vars.erase(std::unique(vars.begin(), vars.end()), vars.end());

  // The relation must only mention bits of the declared alphabet.
  std::unordered_set<std::uint32_t> allowed;
  for (VarId v : vars) {
    for (std::uint32_t bit : ctx.variable(v).bits) {
      allowed.insert(Context::bddVarOf(bit, false));
      allowed.insert(Context::bddVarOf(bit, true));
    }
  }
  for (std::uint32_t bv : ctx.mgr().support(trans)) {
    if (allowed.count(bv) == 0) {
      throw ModelError("system '" + name +
                       "': transition relation mentions a variable outside "
                       "its alphabet (BDD var " +
                       std::to_string(bv) + ")");
    }
  }

  SymbolicSystem sys;
  sys.ctx = &ctx;
  sys.name = std::move(name);
  sys.vars = std::move(vars);
  sys.trans = trans & ctx.domainAll(sys.vars, false) &
              ctx.domainAll(sys.vars, true);
  return sys;
}

SymbolicSystem identitySystem(Context& ctx, std::vector<VarId> vars,
                              std::string name) {
  bdd::Bdd frame = ctx.frameAll(vars);
  return makeSystem(ctx, std::move(name), std::move(vars), std::move(frame));
}

void addReflexive(SymbolicSystem& sys) {
  CMC_ASSERT(sys.ctx != nullptr);
  sys.trans |= sys.ctx->frameAll(sys.vars) & sys.stateDomain() &
               sys.nextDomain();
}

}  // namespace cmc::symbolic
