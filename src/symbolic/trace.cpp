#include "symbolic/trace.hpp"

#include <sstream>

#include "util/hash.hpp"

namespace cmc::symbolic {

std::string TraceState::toString() const {
  std::ostringstream out;
  bool first = true;
  for (const auto& [name, value] : values) {
    if (!first) out << ", ";
    first = false;
    out << name << " = " << value;
  }
  return out.str();
}

std::string Trace::toString() const {
  std::ostringstream out;
  for (std::size_t i = 0; i < states.size(); ++i) {
    if (loopIndex.has_value() && *loopIndex == i) {
      out << "-- loop starts here --\n";
    }
    out << "state " << i << ": " << states[i].toString() << "\n";
  }
  return out.str();
}

TraceBuilder::TraceBuilder(const SymbolicSystem& sys)
    : sys_(sys),
      domain_(sys.stateDomain()),
      currentCube_(sys.ctx->currentCube(sys.vars)),
      nextCube_(sys.ctx->nextCube(sys.vars)),
      swapPerm_(sys.ctx->swapPermutation()) {
  CMC_ASSERT(sys.ctx != nullptr);
}

TraceState TraceBuilder::pickState(const bdd::Bdd& set) const {
  Context& ctx = *sys_.ctx;
  bdd::Manager& mgr = ctx.mgr();
  const bdd::Bdd valid = set & domain_;
  if (valid.isFalse()) {
    throw ModelError("pickState: empty state set");
  }
  const std::vector<std::int8_t> cube = mgr.pickCube(valid);
  TraceState state;
  for (VarId v : sys_.vars) {
    const Variable& var = ctx.variable(v);
    // Find the first domain value consistent with the cube's fixed bits.
    for (std::size_t idx = 0; idx < var.values.size(); ++idx) {
      bool consistent = true;
      for (std::size_t b = 0; b < var.bits.size(); ++b) {
        const std::uint32_t bddVar = Context::bddVarOf(var.bits[b], false);
        const std::int8_t want = cube.size() > bddVar ? cube[bddVar] : -1;
        if (want >= 0 && static_cast<std::size_t>(want) != ((idx >> b) & 1u)) {
          consistent = false;
          break;
        }
      }
      if (consistent) {
        state.values[var.name] = var.values[idx];
        break;
      }
    }
    CMC_ASSERT(state.values.count(var.name) == 1);
  }
  return state;
}

bdd::Bdd TraceBuilder::stateBdd(const TraceState& state) const {
  Context& ctx = *sys_.ctx;
  bdd::Bdd acc = ctx.mgr().bddTrue();
  for (VarId v : sys_.vars) {
    const Variable& var = ctx.variable(v);
    const auto it = state.values.find(var.name);
    if (it == state.values.end()) {
      throw ModelError("stateBdd: missing value for variable " + var.name);
    }
    acc &= ctx.varEq(v, it->second, /*next=*/false);
  }
  return acc;
}

bdd::Bdd TraceBuilder::image(const bdd::Bdd& states) {
  bdd::Manager& mgr = sys_.ctx->mgr();
  const bdd::Bdd primed =
      mgr.andExists(sys_.transBdd(), states, currentCube_);
  return mgr.permute(primed, swapPerm_);
}

bdd::Bdd TraceBuilder::preimage(const bdd::Bdd& states) {
  bdd::Manager& mgr = sys_.ctx->mgr();
  const bdd::Bdd primed = mgr.permute(states, swapPerm_);
  return mgr.andExists(sys_.transBdd(), primed, nextCube_);
}

bdd::Bdd TraceBuilder::reachable(const bdd::Bdd& from) {
  bdd::Bdd acc = from & domain_;
  for (;;) {
    const bdd::Bdd next = acc | image(acc);
    if (next == acc) return acc;
    acc = next;
  }
}

std::optional<Trace> TraceBuilder::path(const bdd::Bdd& from,
                                        const bdd::Bdd& target,
                                        const bdd::Bdd& within) {
  // Forward BFS layers; stop when the frontier meets the target.
  std::vector<bdd::Bdd> layers;
  bdd::Bdd seen = from & within & domain_;
  if (seen.isFalse()) return std::nullopt;
  layers.push_back(seen);
  std::size_t hitLayer = 0;
  bool found = !(seen & target).isFalse();
  while (!found) {
    const bdd::Bdd frontier = (image(layers.back()) & within).diff(seen);
    if (frontier.isFalse()) return std::nullopt;
    seen |= frontier;
    layers.push_back(frontier);
    found = !(frontier & target).isFalse();
    hitLayer = layers.size() - 1;
  }
  if (found && layers.size() == 1) hitLayer = 0;

  // Walk backwards, picking one concrete state per layer.
  Trace trace;
  trace.states.resize(hitLayer + 1);
  bdd::Bdd cursorSet = layers[hitLayer] & target;
  trace.states[hitLayer] = pickState(cursorSet);
  bdd::Bdd cursor = stateBdd(trace.states[hitLayer]);
  for (std::size_t i = hitLayer; i-- > 0;) {
    cursorSet = layers[i] & preimage(cursor);
    CMC_ASSERT(!cursorSet.isFalse());
    trace.states[i] = pickState(cursorSet);
    cursor = stateBdd(trace.states[i]);
  }
  return trace;
}

std::optional<Trace> TraceBuilder::agCounterexample(const bdd::Bdd& init,
                                                    const bdd::Bdd& good) {
  return path(init, (!good) & domain_, sys_.ctx->mgr().bddTrue());
}

std::optional<Trace> TraceBuilder::euWitness(const bdd::Bdd& from,
                                             const bdd::Bdd& f,
                                             const bdd::Bdd& g) {
  // Path through f-states ending in a g-state: search within f ∪ g but
  // require the endpoint in g.
  return path(from, g & domain_, (f | g) & domain_);
}

std::optional<Trace> TraceBuilder::egWitness(const bdd::Bdd& from,
                                             const bdd::Bdd& f) {
  // States with an infinite f-path: νZ. f ∧ EX Z.
  bdd::Bdd z = f & domain_;
  for (;;) {
    const bdd::Bdd next = z & preimage(z);
    if (next == z) break;
    z = next;
  }
  if ((from & z).isFalse()) return std::nullopt;

  // Stem: we are already inside z (every state of z stays in z forever).
  // Build the cycle by stepping within z until a state repeats.
  Trace trace;
  TraceState current = pickState(from & z);
  std::vector<TraceState> visited;
  for (;;) {
    for (std::size_t i = 0; i < visited.size(); ++i) {
      if (visited[i] == current) {
        trace.states = std::move(visited);
        trace.loopIndex = i;
        return trace;
      }
    }
    visited.push_back(current);
    const bdd::Bdd succ = image(stateBdd(current)) & z;
    CMC_ASSERT(!succ.isFalse());
    current = pickState(succ);
  }
}

std::optional<Trace> TraceBuilder::fairLasso(
    const bdd::Bdd& from, const bdd::Bdd& region,
    const std::vector<bdd::Bdd>& fairSets) {
  const bdd::Bdd start = from & region & domain_;
  if (start.isFalse()) return std::nullopt;

  Trace trace;
  trace.states.push_back(pickState(start));
  bdd::Bdd cur = stateBdd(trace.states.back());
  std::size_t loopStart = 0;

  // McMillan's sweep: walk to each fair set in turn, then try to close the
  // cycle back to the sweep's start.  A failed closure means the sweep
  // crossed into a strictly later SCC of the region, so the sweep restarts
  // from the current state; the SCC dag is finite, so the restarts
  // terminate.  When a sweep makes no progress (the current state already
  // satisfies every fair set) and still cannot close, one arbitrary
  // region-step forces progress — a state whose deterministic successor
  // chain returned to it would have closed, so the chain never revisits.
  for (std::size_t guard = 0; guard < 1000000; ++guard) {
    for (const bdd::Bdd& f : fairSets) {
      if (!(cur & f).isFalse()) continue;  // this constraint already holds
      const std::optional<Trace> leg = path(cur, f & region, region);
      if (!leg.has_value()) return std::nullopt;  // region not a fairEG region
      for (std::size_t i = 1; i < leg->states.size(); ++i) {
        trace.states.push_back(leg->states[i]);
      }
      cur = stateBdd(trace.states.back());
    }
    // Close with at least one transition: successor set of cur, then a
    // shortest path back to the sweep start (possibly of length 0 when a
    // successor *is* the start state).
    const bdd::Bdd succ = image(cur) & region;
    if (succ.isFalse()) return std::nullopt;  // region not a fairEG region
    const bdd::Bdd loopBdd = stateBdd(trace.states[loopStart]);
    if (const std::optional<Trace> close = path(succ, loopBdd, region)) {
      // The closure ends at the loop-start state; drop that duplicate (the
      // lasso convention: the last state has an edge back to
      // states[loopIndex]).
      for (std::size_t i = 0; i + 1 < close->states.size(); ++i) {
        trace.states.push_back(close->states[i]);
      }
      trace.loopIndex = loopStart;
      return trace;
    }
    const bool sweepMoved = trace.states.size() - 1 > loopStart;
    if (!sweepMoved) {
      trace.states.push_back(pickState(succ));
      cur = stateBdd(trace.states.back());
    }
    loopStart = trace.states.size() - 1;
  }
  throw Error("fairLasso: sweep failed to converge");
}

Trace TraceBuilder::simulate(const bdd::Bdd& init, std::size_t steps,
                             std::uint64_t seed) {
  Trace trace;
  TraceState current = pickState(init);
  trace.states.push_back(current);
  std::uint64_t rng = seed * 6364136223846793005ULL + 1442695040888963407ULL;
  for (std::size_t i = 0; i < steps; ++i) {
    bdd::Bdd succ = image(stateBdd(current)) & domain_;
    if (succ.isFalse()) break;  // deadlock (non-total relation)
    // Randomize the choice a little: flip a random variable preference by
    // intersecting with a random value cube when possible.
    rng = mix64(rng + i);
    if (!sys_.vars.empty()) {
      const VarId v = sys_.vars[rng % sys_.vars.size()];
      const Variable& var = sys_.ctx->variable(v);
      const std::size_t idx = (rng >> 8) % var.values.size();
      const bdd::Bdd preferred =
          succ & sys_.ctx->varEqIndex(v, idx, false);
      if (!preferred.isFalse()) succ = preferred;
    }
    current = pickState(succ);
    trace.states.push_back(current);
  }
  return trace;
}

}  // namespace cmc::symbolic
