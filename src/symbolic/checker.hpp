// BDD-based fair-CTL model checker — the library's SMV substitute.
//
// Path quantifiers are computed with preimage fixpoints over the
// transition-relation BDD; fairness uses the Emerson-Lei greatest fixpoint
//   EG_fair S = νZ. S ∧ ⋀_{F∈fairness} EX E[S U (Z ∧ F)]
// exactly mirroring the explicit checker (the two are cross-validated by
// the property-based tests).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "ctl/formula.hpp"
#include "symbolic/system.hpp"

namespace cmc::symbolic {

/// Result of one ⊨_r check with the resource data the paper's figures
/// report (verdict, wall time, BDD counters).
struct CheckResult {
  bool holds = false;
  double seconds = 0.0;
  std::uint64_t bddNodesAllocated = 0;  ///< manager total at end of check
  std::uint64_t transNodes = 0;         ///< DAG size of the transition BDD
  std::string specText;
  std::string specName;
};

class Checker {
 public:
  explicit Checker(const SymbolicSystem& sys);
  /// The checker keeps a reference to the system; binding a temporary
  /// would dangle, so it is rejected at compile time.
  explicit Checker(SymbolicSystem&&) = delete;

  /// States satisfying f, path quantifiers over `fairness`-fair paths.
  /// The result is a BDD over the current bits of the system's variables.
  bdd::Bdd sat(const ctl::FormulaPtr& f,
               const std::vector<ctl::FormulaPtr>& fairness);

  /// States from which a fair path exists (EG_fair true).
  bdd::Bdd fairStates(const std::vector<ctl::FormulaPtr>& fairness);

  /// The paper's M ⊨_r f.
  bool holds(const ctl::Restriction& r, const ctl::FormulaPtr& f);
  bool holds(const ctl::Spec& spec);

  /// Like holds() but with resource accounting (for the Fig. 7/10/15/17
  /// reproduction).
  CheckResult check(const ctl::Spec& spec);

  /// A human-readable description of one violating state, if any.
  std::optional<std::string> violationWitness(const ctl::Restriction& r,
                                              const ctl::FormulaPtr& f);

  /// SMV-style semantics: like holds(), but quantifying only over states
  /// reachable from r.init (the paper instead checks all states satisfying
  /// I — see §2.2; this variant exists for comparison and for models whose
  /// unreachable corner states are irrelevant).
  bool holdsReachable(const ctl::Restriction& r, const ctl::FormulaPtr& f);

  /// For a failing spec of shape AG good (good propositional) return a
  /// shortest concrete trace from an init-state to a violation; nullopt if
  /// the spec holds or has a different shape.
  std::optional<std::string> counterexampleTrace(const ctl::Restriction& r,
                                                 const ctl::FormulaPtr& f);

  const SymbolicSystem& system() const noexcept { return sys_; }

 private:
  bdd::Bdd preE(const bdd::Bdd& target);
  bdd::Bdd untilE(const bdd::Bdd& f, const bdd::Bdd& g);
  bdd::Bdd fairEG(const bdd::Bdd& region, const std::vector<bdd::Bdd>& fair);
  bdd::Bdd satRec(const ctl::FormulaPtr& f,
                  const std::vector<bdd::Bdd>& fairSets,
                  const bdd::Bdd& fair);
  bdd::Bdd violations(const ctl::Restriction& r, const ctl::FormulaPtr& f);

  const SymbolicSystem& sys_;
  bdd::Bdd domain_;     ///< valid current-state encodings
  bdd::Bdd nextVars_;   ///< quantification cube for preimages
  std::uint32_t swapPerm_;
};

}  // namespace cmc::symbolic
