// BDD-based fair-CTL model checker — the library's SMV substitute.
//
// Path quantifiers are computed with preimage fixpoints over the
// transition relation; fairness uses the Emerson-Lei greatest fixpoint
//   EG_fair S = νZ. S ∧ ⋀_{F∈fairness} EX E[S U (Z ∧ F)]
// exactly mirroring the explicit checker (the two are cross-validated by
// the property-based tests).
//
// Preimages run, by default, over the system's *partitioned* transition
// relation (symbolic/partition.hpp): each interleaving track is clustered
// up to a node threshold and folded with an early-quantification schedule,
// and the per-track preimages are disjoined.  The monolithic relation is
// never materialized on this path.  CheckerOptions selects the path and
// the clustering threshold; results are BDD-identical either way (asserted
// by the cross-validation tests).
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "ctl/formula.hpp"
#include "symbolic/system.hpp"

namespace cmc::symbolic {

/// Why a cooperative cancellation fired (service layer verdict mapping:
/// Deadline → Timeout, NodeBudget → MemoryOut).
enum class CancelReason { Deadline, NodeBudget, External };

const char* toString(CancelReason reason) noexcept;

/// Thrown out of the checker's fixpoint loops by
/// CheckerOptions::cancelCheck when an obligation exhausts its resource
/// budget.  The checker itself never constructs one; it only guarantees the
/// hook is polled often enough (every preimage and every fixpoint
/// iteration) that a blown-up check aborts promptly instead of hanging.
class CancelledError : public Error {
 public:
  CancelledError(CancelReason reason, const std::string& what)
      : Error(what), reason_(reason) {}

  CancelReason reason() const noexcept { return reason_; }

 private:
  CancelReason reason_;
};

/// Tuning knobs for the checker's preimage engine.
struct CheckerOptions {
  /// Fold preimages over the partitioned relation (early quantification)
  /// instead of one andExists against the monolithic BDD.
  bool usePartitionedTrans = true;
  /// Greedy clustering threshold in BDD nodes; conjuncts are merged while
  /// the cluster stays within it.  0 collapses each track to one cluster.
  std::uint64_t clusterThreshold = 1024;
  /// Cooperative cancellation hook.  When set, it is polled before every
  /// preimage and on every untilE/fairEG fixpoint iteration; throwing
  /// (conventionally CancelledError) aborts the check.  The hook runs on
  /// the checking thread, so it may inspect the system's BDD manager
  /// (e.g. liveNodeCount() against a budget) without synchronization.
  std::function<void()> cancelCheck;
};

/// Result of one ⊨_r check with the resource data the paper's figures
/// report (verdict, wall time, BDD counters).
struct CheckResult {
  bool holds = false;
  double seconds = 0.0;
  std::uint64_t bddNodesAllocated = 0;  ///< manager total at end of check
  std::uint64_t transNodes = 0;         ///< node count of the transition rel.
  std::uint64_t peakLiveNodes = 0;      ///< high-water live nodes this check
  double cacheHitRate = 0.0;            ///< computed-table hits/lookups
  bool usedPartition = false;           ///< preimages ran partitioned
  /// CheckerOptions::clusterThreshold the check ran under (also recorded
  /// for monolithic runs, where it has no effect).
  std::uint64_t clusterThreshold = 0;
  std::string specText;
  std::string specName;
};

class Checker {
 public:
  explicit Checker(const SymbolicSystem& sys, CheckerOptions opts = {});
  /// The checker keeps a reference to the system; binding a temporary
  /// would dangle, so it is rejected at compile time.
  explicit Checker(SymbolicSystem&&) = delete;

  /// States satisfying f, path quantifiers over `fairness`-fair paths.
  /// The result is a BDD over the current bits of the system's variables.
  bdd::Bdd sat(const ctl::FormulaPtr& f,
               const std::vector<ctl::FormulaPtr>& fairness);

  /// States from which a fair path exists (EG_fair true).
  bdd::Bdd fairStates(const std::vector<ctl::FormulaPtr>& fairness);

  /// The paper's M ⊨_r f.
  bool holds(const ctl::Restriction& r, const ctl::FormulaPtr& f);
  bool holds(const ctl::Spec& spec);

  /// Like holds() but with resource accounting (for the Fig. 7/10/15/17
  /// reproduction): per-check peak live nodes and computed-table hit rate
  /// on top of the allocation totals.
  CheckResult check(const ctl::Spec& spec);

  /// A human-readable description of one violating state, if any.
  std::optional<std::string> violationWitness(const ctl::Restriction& r,
                                              const ctl::FormulaPtr& f);

  /// SMV-style semantics: like holds(), but quantifying only over states
  /// reachable from r.init (the paper instead checks all states satisfying
  /// I — see §2.2; this variant exists for comparison and for models whose
  /// unreachable corner states are irrelevant).
  bool holdsReachable(const ctl::Restriction& r, const ctl::FormulaPtr& f);

  /// For a failing spec of shape AG good (good propositional) return a
  /// shortest concrete trace from an init-state to a violation; nullopt if
  /// the spec holds or has a different shape.  Under a nontrivial fairness
  /// restriction the violation must lie on a fair path, so the trace is a
  /// *fair lasso*: a finite prefix to the violating state followed by a
  /// cycle that visits every fairness constraint (rendered with the
  /// "-- loop starts here --" marker).
  std::optional<std::string> counterexampleTrace(const ctl::Restriction& r,
                                                 const ctl::FormulaPtr& f);

  /// States with at least one successor under the partitioned (or
  /// monolithic) relation — exposed for the partition tests.
  bdd::Bdd preE(const bdd::Bdd& target);

  const SymbolicSystem& system() const noexcept { return sys_; }
  const CheckerOptions& options() const noexcept { return opts_; }
  /// True iff preimages fold over the partition schedules.
  bool usesPartition() const noexcept { return partitioned_; }

 private:
  /// Invoke opts_.cancelCheck if set (see CheckerOptions::cancelCheck).
  void pollCancel() {
    if (opts_.cancelCheck) opts_.cancelCheck();
  }

  bdd::Bdd untilE(const bdd::Bdd& f, const bdd::Bdd& g);
  bdd::Bdd fairEG(const bdd::Bdd& region, const std::vector<bdd::Bdd>& fair);
  bdd::Bdd satRec(const ctl::FormulaPtr& f,
                  const std::vector<bdd::Bdd>& fairSets,
                  const bdd::Bdd& fair);
  bdd::Bdd violations(const ctl::Restriction& r, const ctl::FormulaPtr& f);

  const SymbolicSystem& sys_;
  CheckerOptions opts_;
  bdd::Bdd domain_;     ///< valid current-state encodings
  bdd::Bdd nextVars_;   ///< quantification cube for preimages
  std::uint32_t swapPerm_;

  /// One preimage operator per partition track.  When the track's frame
  /// conjuncts are tagged with their variables and the system covers the
  /// context (`local`), the frames are never folded: the schedule holds
  /// only the *core* conjuncts and permId is the partial swap over the
  /// track's owned variables (∃v'. v'=v ∧ dom ∧ X' is the substitution
  /// v'↦v).  The framed variables' domain constraint is NOT applied per
  /// track: every track carries its component's domain conjuncts (the
  /// system invariant), so the local contributions can be disjoined first
  /// and restricted to `domain_` once.  A non-local track uses the full
  /// swap and folds the whole track, frames included.
  struct TrackPre {
    std::uint32_t permId;
    bool local;
    PreimageSchedule schedule;
  };
  std::vector<TrackPre> tracks_;  ///< empty on the monolithic path
  bool partitioned_ = false;
};

}  // namespace cmc::symbolic
