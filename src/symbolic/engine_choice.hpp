// Adaptive partitioned-vs-monolithic engine selection.
//
// The partitioned preimage engine (early quantification over clustered
// tracks) wins when the conjoined transition relation blows up — its whole
// point is never materializing the product (AFS-2 with two clients: 340
// partition nodes vs 4656 monolithic).  But on models whose product stays
// small (the token rings, ABP, AFS-1) the monolithic andExists is a single
// cache-friendly operation per preimage and beats the fold on wall clock.
// Forcing either engine globally therefore loses somewhere; chooseEngine
// decides per system with a *capped materialization probe*:
//
//   cap = max(kProbeFloorNodes, kProbeFactor * partition-node-count)
//
// The monolithic product is folded conjunct-by-conjunct, checking the DAG
// size after every step; if it ever exceeds the cap the probe aborts (the
// blow-up the partitioned engine exists to avoid has been demonstrated at
// bounded cost) and the partitioned engine is chosen.  If the product
// completes within the cap, the monolithic engine is chosen — and the
// probe's product is cached into the system's lazy monolithic slot, so the
// materialization is paid once, not twice.
//
// Thread safety: chooseEngine runs dagSize() (mutable scratch marks) and
// caches into SymbolicSystem::monolithic_, so it must only be called from
// the thread that owns the system's manager — in the service layer that is
// the snapshot build (scout) phase, never a worker reading the shared
// snapshot.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "symbolic/system.hpp"

namespace cmc::symbolic {

/// Engine selection policy carried by job options and the CLI's --engine
/// flag.  Auto resolves partitioned-vs-monolithic per obligation through
/// chooseEngine; Bes forces the explicit-state BES backend (src/bes/);
/// Race runs the BES and symbolic engines concurrently per obligation and
/// takes the first sound verdict.
enum class EngineMode { Auto, Partitioned, Monolithic, Bes, Race };

const char* toString(EngineMode m) noexcept;
/// Parse "auto" | "partitioned" | "monolithic" | "bes" | "race"; false on
/// anything else.
bool engineModeFromString(std::string_view text, EngineMode* out) noexcept;

/// One resolved engine decision plus the inputs that drove it — recorded
/// verbatim in the run trace (engine_choice event) and the report so a
/// surprising pick can be audited from the artifacts alone.
struct EngineChoice {
  bool usePartitioned = true;
  /// True when the capped materialization probe ran (Auto path).
  bool probed = false;
  /// True when the probe aborted at the cap (monolithic size is then a
  /// lower bound, not a measurement).
  bool probeAborted = false;
  std::size_t conjuncts = 0;
  std::uint64_t partitionNodes = 0;
  std::uint64_t monolithicNodes = 0;  ///< valid when the probe completed
  std::uint64_t capNodes = 0;
  std::string reason;
};

inline constexpr std::uint64_t kProbeFloorNodes = 2048;
inline constexpr std::uint64_t kProbeFactor = 4;

/// Decide the preimage engine for `sys` (see file comment).  Single-
/// threaded: probes and may cache the system's monolithic relation.
EngineChoice chooseEngine(const SymbolicSystem& sys);

}  // namespace cmc::symbolic
