// Concrete execution traces over symbolic systems: witness and
// counterexample generation (what SMV prints when a SPEC fails) and a
// random-walk simulator.
//
// Traces are sequences of fully decoded states (variable -> value).  Path
// search runs on BDD frontiers (breadth-first image computation), so the
// returned paths are shortest.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "symbolic/system.hpp"

namespace cmc::symbolic {

/// One fully decoded state of a symbolic system.
struct TraceState {
  std::map<std::string, std::string> values;

  bool operator==(const TraceState& other) const {
    return values == other.values;
  }
  std::string toString() const;
};

/// A finite execution; if `loopIndex` is set the suffix from that index
/// repeats forever (lasso).
struct Trace {
  std::vector<TraceState> states;
  std::optional<std::size_t> loopIndex;

  std::string toString() const;
};

class TraceBuilder {
 public:
  explicit TraceBuilder(const SymbolicSystem& sys);
  /// Keeps a reference to the system; temporaries would dangle.
  explicit TraceBuilder(SymbolicSystem&&) = delete;

  /// Decode one concrete state from a non-empty set (intersected with the
  /// domain).  Throws ModelError when the set has no valid state.
  TraceState pickState(const bdd::Bdd& set) const;

  /// Encode a concrete state back into its BDD cube.
  bdd::Bdd stateBdd(const TraceState& state) const;

  /// Successors of a set: Img(S) = (∃x. T ∧ S)[x'→x].
  bdd::Bdd image(const bdd::Bdd& states);
  /// Predecessors of a set (the checker's preimage).
  bdd::Bdd preimage(const bdd::Bdd& states);

  /// All states reachable from `from` (forward fixpoint).
  bdd::Bdd reachable(const bdd::Bdd& from);

  /// Shortest path from a state in `from` to a state in `target`, moving
  /// only through `within` (pass true for no constraint).  Empty optional
  /// if unreachable.
  std::optional<Trace> path(const bdd::Bdd& from, const bdd::Bdd& target,
                            const bdd::Bdd& within);

  /// Counterexample to AG good from `init`: a shortest path from an initial
  /// state to a ¬good state.  Empty optional when AG good holds.
  std::optional<Trace> agCounterexample(const bdd::Bdd& init,
                                        const bdd::Bdd& good);

  /// Witness for E[f U g] from `from`: a path through f-states to a
  /// g-state.
  std::optional<Trace> euWitness(const bdd::Bdd& from, const bdd::Bdd& f,
                                 const bdd::Bdd& g);

  /// A lasso witnessing EG f from `from`: a path into a cycle lying
  /// entirely in f-states.  Empty optional if no such path exists.
  std::optional<Trace> egWitness(const bdd::Bdd& from, const bdd::Bdd& f);

  /// A *fair* lasso from a state in `from`: a (possibly empty) prefix inside
  /// `region` leading to a cycle inside `region` that visits every set of
  /// `fairSets` at least once, so the infinite unrolling satisfies all
  /// fairness constraints.  `region` must be a fairEG fixpoint (every state
  /// has a region-successor and can reach every fair set within the
  /// region); the standard SMV counterexample sweep is used: visit each
  /// fair set in turn, try to close the cycle, and restart from the
  /// current state when the sweep crossed into a later SCC.
  std::optional<Trace> fairLasso(const bdd::Bdd& from, const bdd::Bdd& region,
                                 const std::vector<bdd::Bdd>& fairSets);

  /// Random simulation: `steps` successive states starting from a state in
  /// `init` (uniformly arbitrary successor choice via cube picking).
  Trace simulate(const bdd::Bdd& init, std::size_t steps,
                 std::uint64_t seed = 0);

 private:
  const SymbolicSystem& sys_;
  bdd::Bdd domain_;
  bdd::Bdd currentCube_;
  bdd::Bdd nextCube_;
  std::uint32_t swapPerm_;
};

}  // namespace cmc::symbolic
