// Symbolic context: a BDD manager plus a registry of finite-domain state
// variables, implementing the boolean encoding of paper §3.4 (Fig. 3): a
// variable with m possible values becomes ⌈log₂ m⌉ boolean atoms.
//
// Bit layout: each boolean *bit* k of the model owns two BDD variables —
// 2k for its current-state value and 2k+1 for its next-state value.  This
// interleaved order keeps transition-relation BDDs small (the standard
// choice in SMV-style checkers) and makes the current↔next renaming a
// single registered permutation.
#pragma once

#include <map>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "bdd/manager.hpp"

namespace cmc::symbolic {

using VarId = int;

struct Variable {
  std::string name;
  /// Declared values in order; booleans use {"0", "1"}.
  std::vector<std::string> values;
  bool isBool = false;
  /// Model-level bit indices (bit b owns BDD vars 2b and 2b+1).
  std::vector<std::uint32_t> bits;

  std::size_t valueIndex(const std::string& value) const;
  bool hasValue(const std::string& value) const;
};

class Context {
 public:
  /// `bddCapacity` pre-sizes the manager's node arena and unique table;
  /// `bddCacheSize` the computed table.  Worker contexts importing from an
  /// elaboration snapshot pass the snapshot's node counts here so the
  /// import and the following fixpoints never rehash or grow mid-flight.
  explicit Context(std::size_t bddCapacity = 1 << 12,
                   std::size_t bddCacheSize = 1 << 14);

  Context(const Context&) = delete;
  Context& operator=(const Context&) = delete;

  bdd::Manager& mgr() noexcept { return mgr_; }
  const bdd::Manager& mgr() const noexcept { return mgr_; }

  /// Declare a boolean variable; returns its id.
  VarId addBoolVar(const std::string& name);
  /// Declare an enumerated variable with the given (non-empty) value list.
  VarId addEnumVar(const std::string& name, std::vector<std::string> values);

  /// Re-declare every variable of `src` into this (empty) context, in id
  /// order.  Variable assignment is deterministic, so ids, bit indices, and
  /// the BDD-variable layout come out identical to the source — the
  /// precondition for importing a snapshot's BDDs with bdd::Importer and
  /// having every varEq/cube/permutation built here line up with them.
  void adoptVariablesFrom(const Context& src);

  bool hasVar(const std::string& name) const;
  VarId varId(const std::string& name) const;  ///< throws ModelError if absent
  const Variable& variable(VarId id) const { return vars_.at(id); }
  std::size_t varCount() const noexcept { return vars_.size(); }
  /// Total boolean bits across all variables.
  std::size_t bitCount() const noexcept { return bitCount_; }

  // ---- Encodings ----------------------------------------------------------

  /// BDD var index of model bit b (current or next column).
  static std::uint32_t bddVarOf(std::uint32_t bit, bool next) {
    return 2 * bit + (next ? 1 : 0);
  }

  /// The predicate `var = value` over the current (or next) state bits.
  bdd::Bdd varEq(VarId id, const std::string& value, bool next = false);
  /// `var = value` by value index (bounds-checked).
  bdd::Bdd varEqIndex(VarId id, std::size_t valueIdx, bool next = false);
  /// Valid-encoding constraint for one variable (excludes the unused bit
  /// patterns of non-power-of-two domains).
  bdd::Bdd domain(VarId id, bool next = false);
  /// Conjoined domain constraint over several variables.
  bdd::Bdd domainAll(const std::vector<VarId>& ids, bool next = false);
  /// Frame condition: every bit of `id` keeps its value (var' = var).
  bdd::Bdd frame(VarId id);
  bdd::Bdd frameAll(const std::vector<VarId>& ids);

  /// Cube of all current (resp. next) BDD vars of the given variables; used
  /// for quantification in image/preimage.
  bdd::Bdd currentCube(const std::vector<VarId>& ids);
  bdd::Bdd nextCube(const std::vector<VarId>& ids);

  /// Permutation swapping every current bit with its next bit (involution,
  /// so one id serves both directions).  Registered lazily over the bits
  /// existing at first use; adding variables afterwards refreshes it.
  std::uint32_t swapPermutation();

  /// Permutation swapping current↔next only for the bits of `ids`, leaving
  /// every other bit in place — the partial swap a disjunctive-track
  /// preimage applies to its target.  Cached per variable set (and
  /// refreshed if variables were added since registration).
  std::uint32_t swapPermutation(const std::vector<VarId>& ids);

  /// Resolve a CTL atom text: "name" (boolean) or "name=value".
  /// Throws ModelError for unknown variables or values.
  bdd::Bdd atomBdd(const std::string& atomText, bool next = false);

  /// Names of all BDD variables ("var.bit" / "var.bit'"), for DOT output.
  std::vector<std::string> bddVarNames() const;

 private:
  VarId addVar(Variable v);

  bdd::Manager mgr_;
  std::vector<Variable> vars_;
  std::unordered_map<std::string, VarId> byName_;
  std::size_t bitCount_ = 0;

  std::uint32_t swapPermId_ = 0;
  std::size_t swapPermBits_ = 0;  ///< bit count when the perm was registered
  bool swapPermValid_ = false;

  /// Partial-swap permutation ids keyed by sorted variable set; `.second`
  /// of each value is the bit count at registration (stale ids are
  /// re-registered after the context grows).
  std::map<std::vector<VarId>, std::pair<std::uint32_t, std::size_t>>
      partialSwapIds_;
};

}  // namespace cmc::symbolic
