#include "util/string_util.hpp"

#include <cctype>
#include <cstdio>

#include "util/common.hpp"

namespace cmc {

void assertionFailure(const char* expr, const char* file, int line) {
  throw Error(std::string("internal invariant violated: ") + expr + " at " +
              file + ":" + std::to_string(line));
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t begin = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      out.emplace_back(text.substr(begin, i - begin));
      begin = i + 1;
    }
  }
  return out;
}

std::string_view trim(std::string_view text) {
  std::size_t b = 0;
  std::size_t e = text.size();
  while (b < e && std::isspace(static_cast<unsigned char>(text[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1]))) --e;
  return text.substr(b, e - b);
}

bool startsWith(std::string_view text, std::string_view prefix) {
  return text.substr(0, prefix.size()) == prefix;
}

std::string withCommas(std::uint64_t n) {
  std::string digits = std::to_string(n);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count != 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  return {out.rbegin(), out.rend()};
}

}  // namespace cmc
