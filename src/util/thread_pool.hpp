// Fixed-size thread pool used by comp::ParallelVerifier to discharge
// independent per-component proof obligations concurrently.  This is the
// mechanism behind the paper's "linear behavior in terms of the number of
// components" (§5): obligations never share state, so they scale with cores.
#pragma once

#include <condition_variable>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <tuple>
#include <type_traits>
#include <utility>
#include <vector>

namespace cmc {

/// A minimal work-stealing-free thread pool.  Tasks are arbitrary
/// `void()` callables; submit() returns a future for the callable's result.
/// The pool joins its workers on destruction after draining the queue.
class ThreadPool {
 public:
  /// Create `threads` workers (defaults to hardware concurrency, min 1).
  explicit ThreadPool(unsigned threads = 0);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool();

  /// Number of worker threads.
  unsigned size() const noexcept { return static_cast<unsigned>(workers_.size()); }

  /// Number of submitted tasks not yet picked up by a worker (tasks in
  /// flight on a worker are not counted).  This is the service layer's
  /// queue-depth metric; like any concurrent gauge it is stale the moment
  /// it returns.
  std::size_t pendingTasks() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return queue_.size();
  }

  /// Schedule `fn(args...)`; the returned future yields its result.
  /// The callable and arguments are decay-copied (moved when passed as
  /// rvalues) into a tuple and invoked with std::apply — unlike std::bind
  /// this supports move-only callables and move-only arguments, and never
  /// misreads placeholders or nested bind expressions.
  /// An exception escaping the task is captured by the packaged_task and
  /// rethrown from the future's get() — it never reaches workerLoop(), so
  /// a throwing task cannot take a worker down or stall later tasks.
  template <typename Fn, typename... Args>
  auto submit(Fn&& fn, Args&&... args)
      -> std::future<std::invoke_result_t<std::decay_t<Fn>&, std::decay_t<Args>...>> {
    // The callable is invoked as an lvalue (it lives in the closure), the
    // arguments as rvalues (std::apply over the moved tuple).
    using Result =
        std::invoke_result_t<std::decay_t<Fn>&, std::decay_t<Args>...>;
    auto task = std::make_shared<std::packaged_task<Result()>>(
        [fn = std::decay_t<Fn>(std::forward<Fn>(fn)),
         args = std::tuple<std::decay_t<Args>...>(
             std::forward<Args>(args)...)]() mutable -> Result {
          return std::apply(fn, std::move(args));
        });
    std::future<Result> future = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      queue_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return future;
  }

 private:
  void workerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace cmc
