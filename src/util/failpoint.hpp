// Deterministic fault injection (failpoints): named sites compiled into
// the hot failure surfaces of the library, armed at runtime to exercise
// the recovery machinery (worker quarantine, cache/journal degradation,
// budget paths) that a healthy run never reaches.
//
// A site is declared with the CMC_FAILPOINT("name") macro.  In the default
// build (CMC_FAILPOINTS=OFF) the macro expands to nothing — zero code, zero
// branches, no registry lookup — so production binaries pay nothing.  With
// -DCMC_FAILPOINTS=ON the macro resolves the site once (function-local
// static) and then evaluates a relaxed atomic per hit, cheap enough even
// for the BDD allocation path.
//
// Actions (armed per site via Failpoint::configure, the CMC_FAILPOINTS env
// var, or `cmc --failpoint site=action`):
//   error      throw FailpointError (a cmc::Error) on every hit — models an
//              expected, recoverable failure (I/O error, allocation limit).
//   throw      throw std::runtime_error on every hit — models an unexpected
//              exception, the input of the scheduler's quarantine path.
//   delay(ms)  sleep for ms milliseconds on every hit — wedges the site so
//              kill-and-resume tests can interrupt a run mid-flight.
//   1in(n)     throw FailpointError on every n-th hit of the site, counted
//              with a per-site atomic — deterministic (no wall clock, no
//              randomness), so a given workload replays identically.
//
// The catalog of wired sites lives in failpoint.cpp (kCatalog) and is
// pre-registered, so `cmc failpoints` and the CI chaos sweep enumerate
// every site even before any is hit.  docs/OPERATIONS.md documents each
// site's failure surface.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/common.hpp"

namespace cmc::util {

/// Thrown by the `error` and `1in(n)` actions: an injected but *expected*
/// failure, indistinguishable from a real I/O or model error to the code
/// under test.
class FailpointError : public Error {
 public:
  using Error::Error;
};

class Failpoint {
 public:
  enum class Action : std::uint8_t {
    Off,
    Error,  ///< throw FailpointError
    Throw,  ///< throw std::runtime_error (not a cmc::Error)
    Delay,  ///< sleep arg milliseconds
    OneIn,  ///< throw FailpointError on every arg-th hit
  };

  struct SiteInfo {
    std::string name;
    std::string description;  ///< empty for dynamically created sites
  };

  /// Get-or-create the named site.  The returned reference is stable for
  /// the process lifetime (the macro caches it in a function-local static).
  static Failpoint& site(std::string_view name);

  /// Arm one site from a "site=action" spec; throws cmc::Error on a
  /// malformed spec.  Arming a site that is not compiled in (or not in the
  /// catalog) is allowed — it simply never fires.
  static void configure(std::string_view spec);

  /// Arm every "site=action" in the comma-separated list (the format of
  /// the CMC_FAILPOINTS environment variable).
  static void configureList(std::string_view list);

  /// Arm sites from the CMC_FAILPOINTS environment variable, if set.
  static void configureFromEnv();

  /// Disarm every site and reset the 1in(n) hit counters (tests).
  static void disarmAll();

  /// Every known site: the compiled-in catalog first (stable order), then
  /// dynamically created ones.
  static std::vector<SiteInfo> sites();

  /// True when the build wires CMC_FAILPOINT sites (CMC_FAILPOINTS=ON).
  static bool compiledIn() noexcept;

  void arm(Action action, std::uint64_t arg = 0);
  void disarm();

  /// The per-hit check: returns immediately when disarmed, otherwise
  /// performs the armed action (which may throw).
  void evaluate() {
    const Action a = action_.load(std::memory_order_relaxed);
    if (a == Action::Off) return;
    fire(a);
  }

  const std::string& name() const noexcept { return name_; }
  std::uint64_t hits() const noexcept {
    return hits_.load(std::memory_order_relaxed);
  }

 private:
  explicit Failpoint(std::string name) : name_(std::move(name)) {}
  friend class FailpointRegistry;

  void fire(Action a);

  std::string name_;
  std::atomic<Action> action_{Action::Off};
  std::atomic<std::uint64_t> arg_{0};
  std::atomic<std::uint64_t> hits_{0};
};

}  // namespace cmc::util

// The site macro.  Always a statement; compiles away entirely unless the
// build defines CMC_FAILPOINTS_ENABLED (set by -DCMC_FAILPOINTS=ON).
#if defined(CMC_FAILPOINTS_ENABLED)
#define CMC_FAILPOINT(site_name)                            \
  do {                                                      \
    static ::cmc::util::Failpoint& cmcFailpointSite =       \
        ::cmc::util::Failpoint::site(site_name);            \
    cmcFailpointSite.evaluate();                            \
  } while (0)
#else
#define CMC_FAILPOINT(site_name) \
  do {                           \
  } while (0)
#endif
