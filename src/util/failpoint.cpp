#include "util/failpoint.hpp"

#include <chrono>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>

namespace cmc::util {

namespace {

/// The compiled-in site catalog (docs/OPERATIONS.md documents each failure
/// surface).  Pre-registered so the sites are enumerable before first hit;
/// keep in sync with the CMC_FAILPOINT call sites.
struct CatalogEntry {
  const char* name;
  const char* description;
};

constexpr CatalogEntry kCatalog[] = {
    {"bdd.alloc_node", "BDD node-arena allocation (every new node)"},
    {"smv.elaborate", "SMV module elaboration (scout phase and workers)"},
    {"cache.disk_append", "obligation-cache JSONL store append"},
    {"cache.disk_load", "obligation-cache JSONL store load (per line)"},
    {"cache.compact",
     "store compaction, after the temp file is written, before the rename"},
    {"trace.write", "run-trace JSONL sink write (per event)"},
    {"scheduler.dispatch", "worker pickup of an obligation, before attempts"},
    {"scheduler.retry", "engine-degradation retry decision"},
    {"race.bes_delay", "start of the BES lane of an --engine race attempt"},
    {"race.symbolic_delay",
     "start of the symbolic lane of an --engine race attempt"},
    {"journal.append", "run-journal append of a decided obligation"},
    {"journal.load", "run-journal load on --resume (per line)"},
    {"net.accept", "server accept of a new connection (before the handler)"},
    {"net.read", "server read of a request line (per read attempt)"},
    {"cluster.hedge_delay",
     "coordinator hedge-lane launch (delay it to let the primary win)"},
};

}  // namespace

/// Owns every Failpoint.  Sites are keyed by name in a std::map so the
/// objects are address-stable; the registry mutex only guards creation and
/// configuration, never the per-hit evaluate() fast path.
class FailpointRegistry {
 public:
  static FailpointRegistry& instance() {
    static FailpointRegistry reg;
    return reg;
  }

  Failpoint& site(std::string_view name) {
    std::lock_guard<std::mutex> lock(mutex_);
    return siteLocked(name);
  }

  void disarmAll() {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& [name, fp] : sites_) {
      fp->action_.store(Failpoint::Action::Off, std::memory_order_relaxed);
      fp->arg_.store(0, std::memory_order_relaxed);
      fp->hits_.store(0, std::memory_order_relaxed);
    }
  }

  std::vector<Failpoint::SiteInfo> list() {
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<Failpoint::SiteInfo> out;
    for (const CatalogEntry& e : kCatalog) {
      out.push_back({e.name, e.description});
    }
    for (const auto& [name, fp] : sites_) {
      bool inCatalog = false;
      for (const CatalogEntry& e : kCatalog) {
        if (name == e.name) {
          inCatalog = true;
          break;
        }
      }
      if (!inCatalog) out.push_back({name, ""});
    }
    return out;
  }

 private:
  FailpointRegistry() {
    // Pre-register the catalog so every wired site exists (and is listed)
    // even before its first hit.
    for (const CatalogEntry& e : kCatalog) siteLocked(e.name);
  }

  Failpoint& siteLocked(std::string_view name) {
    const auto it = sites_.find(name);
    if (it != sites_.end()) return *it->second;
    // Site objects are heap-allocated so their addresses survive map
    // rebalancing (the macro caches the reference in a static).
    auto fp = std::unique_ptr<Failpoint>(new Failpoint(std::string(name)));
    return *sites_.emplace(std::string(name), std::move(fp)).first->second;
  }

  std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Failpoint>, std::less<>> sites_;
};

Failpoint& Failpoint::site(std::string_view name) {
  return FailpointRegistry::instance().site(name);
}

void Failpoint::configure(std::string_view spec) {
  const std::size_t eq = spec.find('=');
  if (eq == std::string_view::npos || eq == 0 || eq + 1 >= spec.size()) {
    throw Error("failpoint: malformed spec '" + std::string(spec) +
                "' (want site=action)");
  }
  const std::string_view name = spec.substr(0, eq);
  const std::string_view action = spec.substr(eq + 1);

  const auto numericArg = [&](std::string_view text,
                              const char* what) -> std::uint64_t {
    // text is the "...(N)" tail; extract N.
    const std::size_t open = text.find('(');
    if (open == std::string_view::npos || text.back() != ')') {
      throw Error(std::string("failpoint: ") + what + " needs an argument: " +
                  std::string(spec));
    }
    const std::string digits(text.substr(open + 1, text.size() - open - 2));
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      throw Error(std::string("failpoint: bad ") + what + " argument in '" +
                  std::string(spec) + "'");
    }
    return std::strtoull(digits.c_str(), nullptr, 10);
  };

  Failpoint& fp = site(name);
  if (action == "error") {
    fp.arm(Action::Error);
  } else if (action == "throw") {
    fp.arm(Action::Throw);
  } else if (action == "off") {
    fp.disarm();
  } else if (action.substr(0, 6) == "delay(") {
    fp.arm(Action::Delay, numericArg(action, "delay(ms)"));
  } else if (action.substr(0, 4) == "1in(") {
    const std::uint64_t n = numericArg(action, "1in(n)");
    if (n == 0) throw Error("failpoint: 1in(0) never fires: " +
                            std::string(spec));
    fp.arm(Action::OneIn, n);
  } else {
    throw Error("failpoint: unknown action '" + std::string(action) +
                "' (want error | throw | delay(ms) | 1in(n) | off)");
  }
}

void Failpoint::configureList(std::string_view list) {
  std::size_t start = 0;
  while (start <= list.size()) {
    std::size_t end = list.find(',', start);
    if (end == std::string_view::npos) end = list.size();
    const std::string_view item = list.substr(start, end - start);
    if (!item.empty()) configure(item);
    if (end == list.size()) break;
    start = end + 1;
  }
}

void Failpoint::configureFromEnv() {
  const char* env = std::getenv("CMC_FAILPOINTS");
  if (env != nullptr && *env != '\0') configureList(env);
}

void Failpoint::disarmAll() { FailpointRegistry::instance().disarmAll(); }

std::vector<Failpoint::SiteInfo> Failpoint::sites() {
  return FailpointRegistry::instance().list();
}

bool Failpoint::compiledIn() noexcept {
#if defined(CMC_FAILPOINTS_ENABLED)
  return true;
#else
  return false;
#endif
}

void Failpoint::arm(Action action, std::uint64_t arg) {
  arg_.store(arg, std::memory_order_relaxed);
  hits_.store(0, std::memory_order_relaxed);
  action_.store(action, std::memory_order_relaxed);
}

void Failpoint::disarm() {
  action_.store(Action::Off, std::memory_order_relaxed);
}

void Failpoint::fire(Action a) {
  const std::uint64_t hit = hits_.fetch_add(1, std::memory_order_relaxed) + 1;
  switch (a) {
    case Action::Off:
      return;
    case Action::Error:
      throw FailpointError("failpoint " + name_ + ": injected error (hit " +
                           std::to_string(hit) + ")");
    case Action::Throw:
      // Deliberately NOT a cmc::Error: models a foreign, unexpected
      // exception escaping a worker (the quarantine path's input).
      throw std::runtime_error("failpoint " + name_ +
                               ": injected unexpected exception (hit " +
                               std::to_string(hit) + ")");
    case Action::Delay:
      std::this_thread::sleep_for(
          std::chrono::milliseconds(arg_.load(std::memory_order_relaxed)));
      return;
    case Action::OneIn: {
      const std::uint64_t n = arg_.load(std::memory_order_relaxed);
      if (n != 0 && hit % n == 0) {
        throw FailpointError("failpoint " + name_ + ": injected error (hit " +
                             std::to_string(hit) + ", every " +
                             std::to_string(n) + ")");
      }
      return;
    }
  }
}

}  // namespace cmc::util
