// The build version, defined by CMake (CMC_VERSION="<project version>" on
// cmc_util, PUBLIC so every dependent sees the same string).  Stamped into
// `cmc version`, report JSON ("cmc_version"), trace job_start events, and
// the journal/cache disk-store header lines, so artifacts written by
// different builds are diagnosable when they meet (a shared --cache-dir, a
// resumed journal, an archived report).
#pragma once

namespace cmc::util {

#ifndef CMC_VERSION
#define CMC_VERSION "0.0.0-dev"
#endif

/// The build version string, e.g. "0.3.0".
inline const char* versionString() noexcept { return CMC_VERSION; }

}  // namespace cmc::util
