// Small string helpers shared by the parsers and pretty printers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace cmc {

/// Join the elements of `parts` with `sep` between them.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Split `text` on `sep`, keeping empty fields.
std::vector<std::string> split(std::string_view text, char sep);

/// Strip leading and trailing ASCII whitespace.
std::string_view trim(std::string_view text);

/// True if `text` starts with `prefix`.
bool startsWith(std::string_view text, std::string_view prefix);

/// Render `n` with thousands separators ("1234567" -> "1,234,567").
std::string withCommas(std::uint64_t n);

}  // namespace cmc
