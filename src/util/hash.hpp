// Hashing helpers used by the BDD unique table, computed cache, and the
// content-addressed obligation cache.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <utility>

namespace cmc {

/// 64-bit finalizer (splitmix64); good avalanche for table indices.
inline constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Combine three 32-bit keys into one table index.
inline constexpr std::uint64_t hash3(std::uint32_t a, std::uint32_t b,
                                     std::uint32_t c) noexcept {
  return mix64((std::uint64_t{a} << 32) ^ (std::uint64_t{b} << 11) ^ c);
}

/// Incremental combine in the boost::hash_combine style.
inline void hashCombine(std::size_t& seed, std::size_t value) noexcept {
  seed ^= value + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2);
}

/// Streaming 128-bit content hash: an FNV-1a 64 lane plus an independent
/// multiply-xorshift lane, finalized through mix64.  Not cryptographic —
/// it fingerprints canonical
/// serializations for cache addressing, where 128 bits make accidental
/// collisions negligible and the digest must be stable across processes
/// and platforms (no pointers, no std::hash).
class StableHash128 {
 public:
  StableHash128& update(std::string_view bytes) noexcept {
    for (unsigned char c : bytes) {
      lo_ = (lo_ ^ c) * 0x100000001b3ULL;  // FNV-1a prime
      hi_ = (hi_ + c + 1) * 0x9e3779b97f4a7c15ULL;
      hi_ ^= hi_ >> 29;
    }
    return *this;
  }
  /// Field separator: keeps ("ab","c") distinct from ("a","bc").
  StableHash128& sep() noexcept { return update(std::string_view("\x1f", 1)); }

  /// Finalized 64-bit digest (the high lane of hex()).  Process- and
  /// platform-stable like hex(); used where a comparable scalar beats a
  /// string — e.g. rendezvous-hash routing scores in the cluster layer.
  std::uint64_t value64() const noexcept { return mix64(lo_); }

  /// 32 lowercase hex characters.
  std::string hex() const {
    const std::uint64_t a = mix64(lo_);
    const std::uint64_t b = mix64(hi_ ^ lo_);
    static constexpr char digits[] = "0123456789abcdef";
    std::string out(32, '0');
    for (int i = 0; i < 16; ++i) {
      out[15 - i] = digits[(a >> (4 * i)) & 0xf];
      out[31 - i] = digits[(b >> (4 * i)) & 0xf];
    }
    return out;
  }

 private:
  std::uint64_t lo_ = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
  std::uint64_t hi_ = 0x9e3779b97f4a7c15ULL;
};

/// Hash for std::pair, usable as an unordered_map hasher.
struct PairHash {
  template <typename A, typename B>
  std::size_t operator()(const std::pair<A, B>& p) const noexcept {
    std::size_t seed = std::hash<A>{}(p.first);
    hashCombine(seed, std::hash<B>{}(p.second));
    return seed;
  }
};

}  // namespace cmc
