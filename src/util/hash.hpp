// Hashing helpers used by the BDD unique table and computed cache.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>

namespace cmc {

/// 64-bit finalizer (splitmix64); good avalanche for table indices.
inline constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Combine three 32-bit keys into one table index.
inline constexpr std::uint64_t hash3(std::uint32_t a, std::uint32_t b,
                                     std::uint32_t c) noexcept {
  return mix64((std::uint64_t{a} << 32) ^ (std::uint64_t{b} << 11) ^ c);
}

/// Incremental combine in the boost::hash_combine style.
inline void hashCombine(std::size_t& seed, std::size_t value) noexcept {
  seed ^= value + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2);
}

/// Hash for std::pair, usable as an unordered_map hasher.
struct PairHash {
  template <typename A, typename B>
  std::size_t operator()(const std::pair<A, B>& p) const noexcept {
    std::size_t seed = std::hash<A>{}(p.first);
    hashCombine(seed, std::hash<B>{}(p.second));
    return seed;
  }
};

}  // namespace cmc
