// Common definitions shared by every cmc subsystem.
//
// The library never calls std::abort on user error; all recoverable problems
// are reported with cmc::Error (std::runtime_error).  CMC_ASSERT guards
// internal invariants only and is kept enabled in release builds because the
// checker's answers are only as trustworthy as its invariants.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace cmc {

/// Base class for every error thrown by the library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown on malformed input text (CTL or SMV syntax errors).
class ParseError : public Error {
 public:
  ParseError(const std::string& what, int line, int column)
      : Error("parse error at " + std::to_string(line) + ":" +
              std::to_string(column) + ": " + what),
        line_(line),
        column_(column) {}

  int line() const noexcept { return line_; }
  int column() const noexcept { return column_; }

 private:
  int line_;
  int column_;
};

/// Thrown when a model is semantically ill-formed (unknown variable, value
/// outside a declared domain, non-total relation where totality is required).
class ModelError : public Error {
 public:
  using Error::Error;
};

[[noreturn]] void assertionFailure(const char* expr, const char* file,
                                   int line);

}  // namespace cmc

#define CMC_ASSERT(expr)                                     \
  do {                                                       \
    if (!(expr)) {                                           \
      ::cmc::assertionFailure(#expr, __FILE__, __LINE__);    \
    }                                                        \
  } while (false)
