#include "util/thread_pool.hpp"

#include <algorithm>

namespace cmc {

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { workerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

}  // namespace cmc
