// Wall-clock timing for the benchmark harness and resource reports.
#pragma once

#include <chrono>

namespace cmc {

/// Monotonic wall-clock stopwatch.  Started on construction.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Restart the stopwatch.
  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last reset().
  double millis() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace cmc
