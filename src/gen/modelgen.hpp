// Parameterized SMV model generation (gen layer): scalable families of the
// paper's systems for learning, benchmarking, and scaling experiments.
//
//  - ringModel(n): a token ring of n stations.  Station i owns st<i> and
//    shares the token bits tok<i> (with its predecessor) and tok<i+1 mod n>
//    (with its successor), so every 2-way split has a 2-bit interface —
//    the minimal nontrivial assumption-learning exercise: under a free
//    environment a station in its critical section can have its token
//    stolen, so the learner must discover "the environment never clears
//    tok<i>".
//  - afs2Model(n): the AFS-2 server of Figure 12 generalized to n clients
//    plus the n clients of Figure 13, mirroring models/afs2_composed.smv
//    (which is this family at n = 2, modulo formatting).
//
// Generated text is deterministic: goldens under models/gen/ are
// byte-compared against regeneration in tests.
#pragma once

#include <cstddef>
#include <string>

namespace cmc::gen {

/// Token ring with `n` stations (n >= 2).
std::string ringModel(std::size_t n);

/// AFS-2 server + `n` clients (n >= 1).
std::string afs2Model(std::size_t n);

}  // namespace cmc::gen
